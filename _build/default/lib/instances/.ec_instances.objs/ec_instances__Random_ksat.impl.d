lib/instances/random_ksat.ml: Ec_cnf Ec_util List Padding
