lib/instances/coloring.ml: Array Ec_cnf Ec_util Hashtbl List Padding
