lib/instances/jnh.mli: Ec_cnf
