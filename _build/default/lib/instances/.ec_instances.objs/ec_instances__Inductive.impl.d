lib/instances/inductive.ml: Ec_util Padding
