lib/instances/registry.mli: Ec_cnf
