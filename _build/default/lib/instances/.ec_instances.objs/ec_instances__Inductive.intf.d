lib/instances/inductive.mli: Ec_cnf
