lib/instances/registry.ml: Coloring Ec_cnf Inductive Jnh List Parity Printf Random_ksat
