lib/instances/random_ksat.mli: Ec_cnf
