lib/instances/padding.ml: Ec_cnf Ec_util List Printf
