lib/instances/jnh.ml: Ec_util List Padding
