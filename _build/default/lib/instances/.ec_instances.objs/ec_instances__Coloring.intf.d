lib/instances/coloring.mli: Ec_cnf
