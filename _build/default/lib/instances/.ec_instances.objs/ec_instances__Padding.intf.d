lib/instances/padding.mli: Ec_cnf Ec_util
