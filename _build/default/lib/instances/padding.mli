(** Shared machinery for the instance generators.

    Every family generator plants a satisfying assignment, builds its
    structured core, then pads with planted-satisfied random clauses
    until the clause count matches the paper's tables exactly.  Padding
    preserves satisfiability by construction and keeps instance sizes
    byte-for-byte comparable with the originals. *)

val random_planted : Ec_util.Rng.t -> int -> Ec_cnf.Assignment.t
(** Total random assignment over [n] variables. *)

val anchored_clause :
  ?agree:int ->
  Ec_util.Rng.t ->
  planted:Ec_cnf.Assignment.t ->
  num_vars:int ->
  width:int ->
  Ec_cnf.Clause.t
(** Random clause of [width] distinct variables with at least
    [agree] literals satisfied by [planted] (default 2, capped at the
    width).  The default matters: with every clause at least
    2-satisfied by the planted assignment, the instance provably
    admits an enabling-EC solution (§5's hard constraints are
    feasible), mirroring the DIMACS originals on which the paper's
    Table 1 reports EC(SC) solutions. *)

val pad_to :
  Ec_util.Rng.t ->
  planted:Ec_cnf.Assignment.t ->
  num_vars:int ->
  target:int ->
  ?width:int ->
  Ec_cnf.Clause.t list ->
  Ec_cnf.Clause.t list
(** Append anchored clauses (default width 3) until the list reaches
    [target] clauses.
    @raise Invalid_argument if the core already exceeds [target]. *)

val finish :
  name:string ->
  num_vars:int ->
  planted:Ec_cnf.Assignment.t ->
  Ec_cnf.Clause.t list ->
  Ec_cnf.Formula.t * Ec_cnf.Assignment.t
(** Assemble the formula and assert the planted assignment satisfies
    it (generators are property-checked at construction time).
    @raise Failure naming the generator if the invariant fails. *)
