(** g*-style instances: graph k-coloring CNF.

    The DIMACS [g250.15]/[g250.29] instances encode coloring of random
    250-node graphs.  Variables are (node, color) pairs; one
    at-least-one-color clause per node, one binary conflict clause per
    (edge, color).  We plant a random coloring and only draw edges
    between differently-colored nodes, so the planted coloring is
    proper; edge count is derived from the target clause count
    ([edges = (num_clauses - nodes) / colors]).

    The planted witness is a proper {e pair} coloring (two colors per
    node, edges only between disjoint pairs): node clauses come out
    2-satisfied and conflict clauses 2-satisfied or supported, so the
    instance provably admits an enabling-EC solution, like the DIMACS
    originals the paper ran Table 1 on. *)

val generate :
  seed:int -> nodes:int -> colors:int -> num_clauses:int ->
  Ec_cnf.Formula.t * Ec_cnf.Assignment.t
(** Variables are numbered [(node-1)·colors + color], nodes and colors
    1-based.
    @raise Invalid_argument if the edge count implied by [num_clauses]
    is not an integer or exceeds the differently-colored pair count. *)
