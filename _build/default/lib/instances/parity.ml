(* XOR of three literals a⊕b⊕c = rhs as four width-3 clauses. *)
let xor3_clauses a b c rhs =
  let mk sa sb sc =
    [ (if sa then a else -a); (if sb then b else -b); (if sc then c else -c) ]
  in
  if rhs then
    (* odd number of true literals *)
    [ mk true true true; mk true false false; mk false true false; mk false false true ]
  else
    [ mk false false false; mk false true true; mk true false true; mk true true false ]

let xor_value planted vs =
  List.fold_left
    (fun acc v ->
      match Ec_cnf.Assignment.value planted v with
      | Ec_cnf.Assignment.True -> not acc
      | Ec_cnf.Assignment.False -> acc
      | Ec_cnf.Assignment.Dc -> acc)
    false vs

let generate ~seed ~num_vars ~num_clauses =
  if num_vars < 5 then invalid_arg "Parity.generate: need >= 5 variables";
  let rng = Ec_util.Rng.create seed in
  (* Reserve a small pool of relaxer variables, planted true.  Strict
     XOR encodings are provably not 2-enableable (a lone flip always
     breaks the parity), so, as in the minimized DIMACS originals
     where helper variables soften the chains, each XOR clause the
     planted assignment only 1-satisfies gets one relaxer literal. *)
  let nslack = max 2 (num_vars / 32) in
  let chain_vars = num_vars - nslack in
  let planted_bools =
    List.init num_vars (fun i -> if i >= chain_vars then true else Ec_util.Rng.bool rng)
  in
  let planted = Ec_cnf.Assignment.of_bool_list planted_bools in
  let slack i = chain_vars + 1 + (i mod nslack) in
  let slack_counter = ref 0 in
  let relax lits =
    let sat =
      List.fold_left
        (fun acc l -> if Ec_cnf.Assignment.lit_true planted l then acc + 1 else acc)
        0 lits
    in
    if sat >= 2 then lits
    else begin
      incr slack_counter;
      slack !slack_counter :: lits
    end
  in
  let max_triples = num_clauses / 4 in
  let chain_triples = max 1 (chain_vars - 2) in
  let triples = min max_triples chain_triples in
  if triples < 1 then invalid_arg "Parity.generate: clause budget too small";
  let core = ref [] in
  let add_xor a b c =
    let rhs = xor_value planted [ a; b; c ] in
    List.iter
      (fun lits -> core := Ec_cnf.Clause.make (relax lits) :: !core)
      (xor3_clauses a b c rhs)
  in
  for i = 1 to triples do
    add_xor i (i + 1) (i + 2)
  done;
  (* Extra random triples keep the XOR flavour when the clause budget
     outruns the chain. *)
  let extra = (num_clauses - List.length !core) / 4 in
  for _ = 1 to extra do
    match Ec_util.Rng.sample rng 3 chain_vars with
    | [ x; y; z ] -> add_xor (x + 1) (y + 1) (z + 1)
    | _ -> assert false
  done;
  let clauses = Padding.pad_to rng ~planted ~num_vars ~target:num_clauses !core in
  Padding.finish ~name:"parity" ~num_vars ~planted clauses
