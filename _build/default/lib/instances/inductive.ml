let generate ~seed ~num_vars ~num_clauses =
  if num_vars < 4 then invalid_arg "Inductive.generate: need >= 4 variables";
  let rng = Ec_util.Rng.create seed in
  let planted = Padding.random_planted rng num_vars in
  let wide_budget = num_clauses / 3 in
  let core = ref [] in
  (* Wide "choose an explanation" clauses: mostly positive literals,
     anchored on the planted assignment. *)
  for _ = 1 to wide_budget do
    let width = min num_vars (5 + Ec_util.Rng.int rng 5) in
    let c = Padding.anchored_clause rng ~planted ~num_vars ~width in
    core := c :: !core
  done;
  (* Binary implications r -> f, anchored. *)
  let clauses =
    Padding.pad_to rng ~planted ~num_vars ~target:num_clauses ~width:2 !core
  in
  Padding.finish ~name:"inductive" ~num_vars ~planted clauses
