(** The paper's benchmark suite, regenerated.

    Thirteen DIMACS instances appear in Tables 1–3: eight "small"
    instances solved exactly and five "large" ones bootstrapped by the
    heuristic solver.  [paper_suite] lists them with the exact
    variable/clause counts of the tables; [build] materializes one as a
    CNF formula with a planted satisfying assignment (see DESIGN.md §4
    for the substitution rationale).

    Scaled variants ([scale]) shrink an instance while preserving its
    family structure and clause/variable ratio — the bench harness's
    fast default. *)

type family =
  | Parity
  | Inductive
  | Jnh
  | Random3sat
  | Coloring of { nodes : int; colors : int }

type tier =
  | Exact      (** top of the tables: solved with the exact solver *)
  | Heuristic  (** bottom: initial solution from the heuristic solver *)

type spec = {
  name : string;
  family : family;
  num_vars : int;
  num_clauses : int;
  tier : tier;
  seed : int;
}

val paper_suite : spec list
(** All 13 instances, in table order. *)

val small_suite : spec list
(** The 8 [Exact]-tier instances. *)

val large_suite : spec list
(** The 5 [Heuristic]-tier instances. *)

val find : string -> spec
(** Look up by instance name.
    @raise Not_found for unknown names. *)

val scale : float -> spec -> spec
(** [scale 0.25 spec] shrinks variables and clauses by the factor
    (keeping at least a workable minimum, preserving family
    parameters' consistency).  Scaled coloring instances additionally
    cap the average degree below the palette size — the full-size
    degree/colors ratio is super-critical and tiny graphs at that
    ratio are uninformative cliff instances.  [scale 1.0] is the
    identity. *)

type instance = {
  spec : spec;
  formula : Ec_cnf.Formula.t;
  planted : Ec_cnf.Assignment.t;
}

val build : spec -> instance
(** Deterministic in [spec.seed]. *)
