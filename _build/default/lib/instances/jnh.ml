let generate ~seed ~num_vars ~num_clauses =
  if num_vars < 3 then invalid_arg "Jnh.generate: need >= 3 variables";
  let rng = Ec_util.Rng.create seed in
  let planted = Padding.random_planted rng num_vars in
  let clause _ =
    let width = min num_vars (3 + Ec_util.Rng.int rng 5) in
    Padding.anchored_clause rng ~planted ~num_vars ~width
  in
  let clauses = List.init num_clauses clause in
  Padding.finish ~name:"jnh" ~num_vars ~planted clauses
