let generate ~seed ~nodes ~colors ~num_clauses =
  if nodes < 2 || colors < 4 then invalid_arg "Coloring.generate: degenerate size";
  let rem = num_clauses - nodes in
  if rem < 0 || rem mod colors <> 0 then
    invalid_arg "Coloring.generate: num_clauses must be nodes + edges*colors";
  let edges = rem / colors in
  let rng = Ec_util.Rng.create seed in
  let num_vars = nodes * colors in
  let var node color = ((node - 1) * colors) + color in
  (* Plant a proper PAIR coloring: every node carries two colors, and
     edges only join nodes with disjoint pairs.  Under that planted
     point every node clause is 2-satisfied and every conflict clause
     is 2-satisfied or supported (dropping one of a node's two colors
     breaks nothing), so the instance provably admits enabling EC. *)
  let pair_of =
    Array.init (nodes + 1) (fun _ ->
        let c1 = 1 + Ec_util.Rng.int rng colors in
        let rec other () =
          let c = 1 + Ec_util.Rng.int rng colors in
          if c = c1 then other () else c
        in
        (c1, other ()))
  in
  let planted =
    Ec_cnf.Assignment.of_list num_vars
      (List.concat_map
         (fun node ->
           let c1, c2 = pair_of.(node) in
           List.init colors (fun c0 ->
               let color = c0 + 1 in
               (var node color, color = c1 || color = c2)))
         (List.init nodes (fun i -> i + 1)))
  in
  let disjoint u w =
    let a1, a2 = pair_of.(u) and b1, b2 = pair_of.(w) in
    a1 <> b1 && a1 <> b2 && a2 <> b1 && a2 <> b2
  in
  let seen = Hashtbl.create (2 * edges) in
  let rec draw_edges acc remaining guard =
    if remaining = 0 then acc
    else if guard > 1000 * (edges + 10) then
      invalid_arg "Coloring.generate: cannot place that many edges"
    else begin
      let u = 1 + Ec_util.Rng.int rng nodes in
      let w = 1 + Ec_util.Rng.int rng nodes in
      let u, w = (min u w, max u w) in
      if u = w || (not (disjoint u w)) || Hashtbl.mem seen (u, w) then
        draw_edges acc remaining (guard + 1)
      else begin
        Hashtbl.add seen (u, w) ();
        draw_edges ((u, w) :: acc) (remaining - 1) (guard + 1)
      end
    end
  in
  let edge_list = draw_edges [] edges 0 in
  let node_clauses =
    List.init nodes (fun i ->
        let node = i + 1 in
        Ec_cnf.Clause.make (List.init colors (fun c0 -> var node (c0 + 1))))
  in
  let conflict_clauses =
    List.concat_map
      (fun (u, w) ->
        List.init colors (fun c0 ->
            let color = c0 + 1 in
            Ec_cnf.Clause.make [ -var u color; -var w color ]))
      edge_list
  in
  Padding.finish ~name:"coloring" ~num_vars ~planted (node_clauses @ conflict_clauses)
