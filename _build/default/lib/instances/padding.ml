let random_planted rng n =
  Ec_cnf.Assignment.of_bool_list (List.init n (fun _ -> Ec_util.Rng.bool rng))

let anchored_clause ?(agree = 2) rng ~planted ~num_vars ~width =
  let agree = min agree width in
  (* Pick [width] distinct variables; make [agree] of them literals
     that match the planted value, randomize the rest. *)
  let vars = Ec_util.Rng.sample rng width num_vars in
  let lits =
    List.mapi
      (fun i v0 ->
        let v = v0 + 1 in
        if i < agree then
          match Ec_cnf.Assignment.value planted v with
          | Ec_cnf.Assignment.True -> v
          | Ec_cnf.Assignment.False -> -v
          | Ec_cnf.Assignment.Dc -> if Ec_util.Rng.bool rng then v else -v
        else if Ec_util.Rng.bool rng then v
        else -v)
      vars
  in
  Ec_cnf.Clause.make lits

let pad_to rng ~planted ~num_vars ~target ?(width = 3) core =
  let have = List.length core in
  if have > target then
    invalid_arg
      (Printf.sprintf "Padding.pad_to: core has %d clauses, target %d" have target);
  let padding =
    List.init (target - have) (fun _ ->
        anchored_clause ~agree:2 rng ~planted ~num_vars ~width:(min width num_vars))
  in
  core @ padding

let finish ~name ~num_vars ~planted clauses =
  let f = Ec_cnf.Formula.create ~num_vars clauses in
  if not (Ec_cnf.Assignment.satisfies planted f) then
    failwith (Printf.sprintf "instance generator %s: planted assignment does not satisfy" name);
  (f, planted)
