type family =
  | Parity
  | Inductive
  | Jnh
  | Random3sat
  | Coloring of { nodes : int; colors : int }

type tier = Exact | Heuristic

type spec = {
  name : string;
  family : family;
  num_vars : int;
  num_clauses : int;
  tier : tier;
  seed : int;
}

let mk name family num_vars num_clauses tier seed =
  { name; family; num_vars; num_clauses; tier; seed }

let paper_suite =
  [ mk "par8-1-c" Parity 64 254 Exact 1001;
    mk "ii8a1" Inductive 66 186 Exact 1002;
    mk "par8-3-c" Parity 75 298 Exact 1003;
    mk "jnh201" Jnh 100 800 Exact 1004;
    mk "jnh1" Jnh 100 850 Exact 1005;
    mk "ii8a2" Inductive 180 800 Exact 1006;
    mk "ii8b2" Inductive 576 4088 Exact 1007;
    mk "f600" Random3sat 600 2550 Exact 1008;
    mk "par32-5-c" Parity 1339 5350 Heuristic 1009;
    mk "ii16a1" Inductive 1650 19368 Heuristic 1010;
    mk "par32-5" Parity 3176 10325 Heuristic 1011;
    mk "g250.15" (Coloring { nodes = 250; colors = 15 }) 3750 233965 Heuristic 1012;
    mk "g250.29" (Coloring { nodes = 250; colors = 29 }) 7250 454622 Heuristic 1013 ]

let small_suite = List.filter (fun s -> s.tier = Exact) paper_suite

let large_suite = List.filter (fun s -> s.tier = Heuristic) paper_suite

let find name =
  match List.find_opt (fun s -> s.name = name) paper_suite with
  | Some s -> s
  | None -> raise Not_found

let scale factor spec =
  if factor >= 1.0 then spec
  else
    let scaled_int lo x = max lo (int_of_float (float_of_int x *. factor)) in
    match spec.family with
    | Coloring { nodes; colors } ->
      (* Shrink the graph; keep the palette.  Edge count follows from
         the clause budget, so rebuild it consistently.  Density is
         capped at average degree [colors - 2]: tiny graphs at the
         original super-critical degree/colors ratio fall into a regime
         the 2002-style solvers cannot touch at any scale, which would
         say nothing about the full-size instance. *)
      let nodes' = scaled_int 12 nodes in
      let edges = (spec.num_clauses - nodes) / colors in
      let scaled_edges = int_of_float (float_of_int edges *. factor *. factor) in
      let degree_cap = nodes' * (colors - 2) / 2 in
      let edges' = max nodes' (min scaled_edges degree_cap) in
      { spec with
        name = spec.name ^ Printf.sprintf "@%.2f" factor;
        family = Coloring { nodes = nodes'; colors };
        num_vars = nodes' * colors;
        num_clauses = nodes' + (edges' * colors) }
    | Parity | Inductive | Jnh | Random3sat ->
      let num_vars = scaled_int 20 spec.num_vars in
      let ratio = float_of_int spec.num_clauses /. float_of_int spec.num_vars in
      { spec with
        name = spec.name ^ Printf.sprintf "@%.2f" factor;
        num_vars;
        num_clauses = max num_vars (int_of_float (float_of_int num_vars *. ratio)) }

type instance = {
  spec : spec;
  formula : Ec_cnf.Formula.t;
  planted : Ec_cnf.Assignment.t;
}

let build spec =
  let formula, planted =
    match spec.family with
    | Parity ->
      Parity.generate ~seed:spec.seed ~num_vars:spec.num_vars ~num_clauses:spec.num_clauses
    | Inductive ->
      Inductive.generate ~seed:spec.seed ~num_vars:spec.num_vars
        ~num_clauses:spec.num_clauses
    | Jnh ->
      Jnh.generate ~seed:spec.seed ~num_vars:spec.num_vars ~num_clauses:spec.num_clauses
    | Random3sat ->
      Random_ksat.generate ~seed:spec.seed ~num_vars:spec.num_vars
        ~num_clauses:spec.num_clauses ()
    | Coloring { nodes; colors } ->
      Coloring.generate ~seed:spec.seed ~nodes ~colors ~num_clauses:spec.num_clauses
  in
  assert (Ec_cnf.Formula.num_vars formula = spec.num_vars);
  assert (Ec_cnf.Formula.num_clauses formula = spec.num_clauses);
  { spec; formula; planted }
