(** jnh*-style instances: random clauses of mixed widths.

    The DIMACS [jnh] family draws each clause by including literals
    with a fixed probability, yielding widths concentrated around 5
    over 100 variables.  We sample widths from the same band (3–7,
    mean 5) and anchor every clause on the planted assignment. *)

val generate :
  seed:int -> num_vars:int -> num_clauses:int ->
  Ec_cnf.Formula.t * Ec_cnf.Assignment.t
