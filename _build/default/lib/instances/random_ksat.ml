let generate ?(k = 3) ~seed ~num_vars ~num_clauses () =
  if num_vars < k then invalid_arg "Random_ksat.generate: num_vars < k";
  let rng = Ec_util.Rng.create seed in
  let planted = Padding.random_planted rng num_vars in
  let rec clause () =
    let c = Ec_cnf.Change.random_clause rng ~num_vars ~width:k in
    if Ec_cnf.Assignment.clause_sat_count planted c >= 2 then c else clause ()
  in
  let clauses = List.init num_clauses (fun _ -> clause ()) in
  Padding.finish ~name:"random_ksat" ~num_vars ~planted clauses
