(** f*-style instances: uniform random k-SAT with a planted solution.

    The DIMACS [f600] instance is random 3-SAT at the satisfiable edge
    of the phase transition (ratio 4.25).  We draw uniform width-k
    clauses, rejecting those the planted assignment does not
    2-satisfy: density and guaranteed satisfiability are preserved,
    and the planted point doubles as an enabling-EC witness (see
    DESIGN.md §4 on this substitution). *)

val generate :
  ?k:int -> seed:int -> num_vars:int -> num_clauses:int -> unit ->
  Ec_cnf.Formula.t * Ec_cnf.Assignment.t
(** Default [k = 3]. *)
