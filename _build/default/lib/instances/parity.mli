(** par*-style instances: CNF-ized XOR chains.

    The DIMACS [par8-*] / [par32-*] family encodes parity learning —
    long chains of XOR constraints.  We regenerate the structural
    character: overlapping ternary XOR constraints along a chain
    (tree-like interaction graph, as in the minimized "-c" instances),
    each contributing its four CNF clauses, with right-hand sides read
    off a planted assignment so the instance is satisfiable, padded to
    the exact clause count.

    Strict XOR encodings admit no enabling-EC solution (flipping any
    single variable of a satisfied parity constraint breaks it), while
    the DIMACS par*-c originals — minimized forms full of helper
    equivalences — do.  To preserve that property, clauses the planted
    assignment only 1-satisfies receive one literal from a small pool
    of relaxer variables (planted true), softening the chains exactly
    where rigidity would make §5's constraints infeasible. *)

val generate :
  seed:int -> num_vars:int -> num_clauses:int ->
  Ec_cnf.Formula.t * Ec_cnf.Assignment.t
(** @raise Invalid_argument if fewer than 3 variables or the clause
    budget cannot hold the minimal chain. *)
