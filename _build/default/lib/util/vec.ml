type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 0) ~dummy () =
  { data = (if capacity = 0 then [||] else Array.make capacity dummy);
    len = 0;
    dummy }

let make n x = { data = Array.make (max n 1) x; len = n; dummy = x }

let length v = v.len

let is_empty v = v.len = 0

let check v i name =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds [0,%d)" name i v.len)

let get v i =
  check v i "get";
  Array.unsafe_get v.data i

let set v i x =
  check v i "set";
  Array.unsafe_set v.data i x

let grow v =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data' = Array.make cap' v.dummy in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = Array.unsafe_get v.data v.len in
  Array.unsafe_set v.data v.len v.dummy;
  x

let top v =
  if v.len = 0 then invalid_arg "Vec.top: empty";
  Array.unsafe_get v.data (v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let swap_remove v i =
  check v i "swap_remove";
  let x = Array.unsafe_get v.data i in
  v.len <- v.len - 1;
  Array.unsafe_set v.data i (Array.unsafe_get v.data v.len);
  Array.unsafe_set v.data v.len v.dummy;
  x

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let for_all p v =
  let rec loop i = i >= v.len || (p (Array.unsafe_get v.data i) && loop (i + 1)) in
  loop 0

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (Array.unsafe_get v.data i :: acc) in
  loop (v.len - 1) []

let of_list ~dummy xs =
  let v = create ~capacity:(List.length xs) ~dummy () in
  List.iter (push v) xs;
  v

let to_array v = Array.sub v.data 0 v.len

let copy v = { data = Array.copy v.data; len = v.len; dummy = v.dummy }
