let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let median = function
  | [] -> 0.0
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2)
    else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) y -> (min lo y, max hi y)) (x, x) xs

let geometric_mean = function
  | [] -> 0.0
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample";
          acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int (List.length xs))
