type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* splitmix64 step: state += golden; z = mix(state). *)
let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 low bits so Int64.to_int cannot wrap negative in OCaml's
     63-bit native ints; modulo bias is negligible for the bounds used
     here (< 2^40). *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) land max_int in
  r mod bound

let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits53 *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample";
  if 3 * k >= n then begin
    (* Dense case: shuffle a full index array and take a prefix. *)
    let arr = Array.init n (fun i -> i) in
    shuffle t arr;
    Array.to_list (Array.sub arr 0 k)
  end else begin
    (* Sparse case: rejection sampling into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let rec draw acc remaining =
      if remaining = 0 then acc
      else
        let x = int t n in
        if Hashtbl.mem seen x then draw acc remaining
        else begin
          Hashtbl.add seen x ();
          draw (x :: acc) (remaining - 1)
        end
    in
    draw [] k
  end
