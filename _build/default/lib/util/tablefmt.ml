type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reverse order *)
}

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure (List.map fst t.headers);
  List.iter (function Cells cells -> measure cells | Separator -> ()) rows;
  let aligns = Array.of_list (List.map snd t.headers) in
  let line_of cells =
    let padded = List.mapi (fun i c -> pad aligns.(i) widths.(i) c) cells in
    String.concat "  " padded
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line_of (List.map fst t.headers));
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      (match row with
      | Cells cells -> Buffer.add_string buf (line_of cells)
      | Separator -> Buffer.add_string buf rule);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_int = string_of_int
