(** Wall-clock timing for the experiment harness. *)

type t

val start : unit -> t
(** A stopwatch started now. *)

val elapsed_s : t -> float
(** Seconds of wall-clock time since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the
    elapsed wall-clock seconds. *)
