type t = {
  heap : int array;     (* heap.(i) = element at heap position i *)
  pos : int array;      (* pos.(e) = heap position of e, or -1 *)
  prio : float array;
  mutable n : int;
}

let create cap =
  { heap = Array.make (max cap 1) 0;
    pos = Array.make (max cap 1) (-1);
    prio = Array.make (max cap 1) 0.0;
    n = 0 }

let size t = t.n

let is_empty t = t.n = 0

let mem t e = t.pos.(e) >= 0

let swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.pos.(b) <- i;
  t.pos.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(t.heap.(i)) > t.prio.(t.heap.(parent)) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.n && t.prio.(t.heap.(l)) > t.prio.(t.heap.(!largest)) then largest := l;
  if r < t.n && t.prio.(t.heap.(r)) > t.prio.(t.heap.(!largest)) then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let insert t e =
  if e < 0 || e >= Array.length t.pos then invalid_arg "Idx_heap.insert";
  if t.pos.(e) < 0 then begin
    t.heap.(t.n) <- e;
    t.pos.(e) <- t.n;
    t.n <- t.n + 1;
    sift_up t (t.n - 1)
  end

let pop_max t =
  if t.n = 0 then raise Not_found;
  let top = t.heap.(0) in
  t.n <- t.n - 1;
  if t.n > 0 then begin
    let last = t.heap.(t.n) in
    t.heap.(0) <- last;
    t.pos.(last) <- 0;
    sift_down t 0
  end;
  t.pos.(top) <- -1;
  top

let priority t e = t.prio.(e)

let set_priority t e p =
  let old = t.prio.(e) in
  t.prio.(e) <- p;
  let i = t.pos.(e) in
  if i >= 0 then if p > old then sift_up t i else sift_down t i

let rescale t factor =
  for e = 0 to Array.length t.prio - 1 do
    t.prio.(e) <- t.prio.(e) *. factor
  done
