lib/util/stats.mli:
