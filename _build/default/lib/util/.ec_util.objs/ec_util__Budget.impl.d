lib/util/budget.ml: Float Option Unix
