lib/util/stopwatch.mli:
