lib/util/idx_heap.mli:
