lib/util/budget.mli:
