lib/util/vec.mli:
