lib/util/idx_heap.ml: Array
