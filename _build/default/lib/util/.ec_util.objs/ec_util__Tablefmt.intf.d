lib/util/tablefmt.mli:
