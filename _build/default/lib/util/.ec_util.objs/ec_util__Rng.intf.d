lib/util/rng.mli:
