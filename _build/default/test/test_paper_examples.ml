(* The paper's worked examples (§1, §3, §5, §7), encoded as tests.

   Where the OCR'd text of the paper is internally inconsistent (the
   fast-EC example's printed assignment does not satisfy its printed
   formula), the test works from the prose semantics instead; see
   DESIGN.md §4. *)

let check = Alcotest.check

module F = Ec_cnf.Formula
module C = Ec_cnf.Clause
module A = Ec_cnf.Assignment

(* ---- §1, enabling example ----
   F = (v1+~v3+~v5)(v2+~v3+~v5)(v2+v4+v5)(~v3+~v4)
   S = {0,1,1,0,0}   E = {1,1,0,1,0} *)

let f1 =
  F.of_lists ~num_vars:5 [ [ 1; -3; -5 ]; [ 2; -3; -5 ]; [ 2; 4; 5 ]; [ -3; -4 ] ]

let s1 = A.of_list 5 [ (1, false); (2, true); (3, true); (4, false); (5, false) ]

let e1 = A.of_list 5 [ (1, true); (2, true); (3, false); (4, true); (5, false) ]

let test_both_satisfy () =
  check Alcotest.bool "S satisfies" true (A.satisfies s1 f1);
  check Alcotest.bool "E satisfies" true (A.satisfies e1 f1)

let test_e_tolerates_everything () =
  (* "Solution E always has the correct solution, regardless of which
     variable is being eliminated." *)
  List.iter
    (fun v ->
      check Alcotest.bool
        (Printf.sprintf "E tolerates eliminating v%d" v)
        true
        (Ec_cnf.Ksat.tolerates_elimination f1 e1 v))
    [ 1; 2; 3; 4; 5 ]

let test_s_fragile () =
  (* "However, if we eliminate v2, then clauses f2 and f3 are not
     satisfied." — S breaks on at least one elimination. *)
  check Alcotest.bool "S does not tolerate v2" false
    (Ec_cnf.Ksat.tolerates_elimination f1 s1 2);
  check Alcotest.bool "E enabled, S not" true
    (Ec_cnf.Ksat.enabled f1 e1 && not (Ec_cnf.Ksat.enabled f1 s1))

let test_v3_elimination_repair () =
  (* "An interesting case is when v3 is being eliminated ... if we
     change the assignment of variable v4 ... this clause will again be
     satisfied" — after eliminating v3, E needs only a local flip. *)
  let f' = F.eliminate_var f1 3 in
  let r = Ec_core.Fast_ec.resolve ~backend:Ec_core.Backend.dpll f' e1 in
  match r.Ec_core.Fast_ec.solution with
  | Some a ->
    check Alcotest.bool "repaired" true (A.satisfies a f');
    check Alcotest.bool "small cone" true (r.Ec_core.Fast_ec.sub_vars_count <= 3)
  | None -> Alcotest.fail "local repair exists"

(* ---- §3, set-cover encoding example ----
   F = (~v1 + v2)(v2 + v3)(v1 + ~v3): x1..x3 positive phases,
   x4..x6 complemented. *)

let test_section3_encoding () =
  let f = F.of_lists ~num_vars:3 [ [ -1; 2 ]; [ 2; 3 ]; [ 1; -3 ] ] in
  let enc = Ec_core.Encode.of_formula f in
  (* the paper's subsets: C1 = {S3} (v1 appears in clause 3), C2 = {S1, S2},
     C3 = {S2}, C4 = {S1}, C5 = {}, C6 = {S3} *)
  let occurrences_of_ilp_var id =
    (* clauses whose covering row mentions this ILP variable *)
    let m = Ec_core.Encode.model enc in
    Array.to_list (Ec_ilp.Model.constrs m)
    |> List.filteri (fun i _ -> i < F.num_clauses f)
    |> List.mapi (fun i (c : Ec_ilp.Model.constr) ->
           (i, List.mem id (Ec_ilp.Linexpr.vars c.expr)))
    |> List.filter_map (fun (i, present) -> if present then Some i else None)
  in
  check (Alcotest.list Alcotest.int) "C1 = {S3}" [ 2 ]
    (occurrences_of_ilp_var (Ec_core.Encode.pos_var enc 1));
  check (Alcotest.list Alcotest.int) "C2 = {S1, S2}" [ 0; 1 ]
    (occurrences_of_ilp_var (Ec_core.Encode.pos_var enc 2));
  check (Alcotest.list Alcotest.int) "C5 = {}" []
    (occurrences_of_ilp_var (Ec_core.Encode.neg_var enc 2))

(* ---- §6 fast EC: the formula of the example (prose semantics) ---- *)

let test_section6_fast_ec () =
  let f =
    F.of_lists ~num_vars:6
      [ [ 1; 2; 3 ]; [ 1; -2; -3; 4 ]; [ 1; 3; 6 ]; [ 1; 4; 5 ]; [ -1; 3; 4 ];
        [ 2; -3; 5 ]; [ 2; -6 ]; [ -2; 5 ]; [ 3; -4; 5 ]; [ -3; 5 ] ]
  in
  match Ec_sat.Cdcl.solve_formula f with
  | Ec_sat.Outcome.Sat s ->
    let f' =
      F.add_clauses f [ C.make [ -5; 6 ]; C.make [ 1; -3; 4 ] ]
    in
    let s = A.extend s (F.num_vars f') in
    let r = Ec_core.Fast_ec.resolve f' s in
    (* the paper's point: the re-solved instance is a small fraction of
       the ten-clause original *)
    (match r.Ec_core.Fast_ec.solution with
    | Some merged ->
      check Alcotest.bool "merged satisfies" true (A.satisfies merged f');
      check Alcotest.bool "cone smaller than instance" true
        (r.Ec_core.Fast_ec.sub_clauses_count < F.num_clauses f')
    | None -> Alcotest.fail "fast EC resolves the example")
  | _ -> Alcotest.fail "example formula is satisfiable"

(* ---- §7 preserving EC example ---- *)

let test_section7_preserving () =
  let f =
    F.of_lists ~num_vars:5
      [ [ 1; 2; 4 ]; [ 1; 4; -5 ]; [ -1; -3; 4 ]; [ 2; 3; 5 ]; [ -2; 4; 5 ]; [ 3; -4; 5 ] ]
  in
  let s = A.of_list 5 [ (1, true); (2, true); (3, false); (4, false); (5, true) ] in
  check Alcotest.bool "S satisfies F" true (A.satisfies s f);
  let f' = F.add_clauses f [ C.make [ -2; 3; 4 ]; C.make [ 1; -2; -5 ] ] in
  check Alcotest.bool "change invalidates S" false (A.satisfies s f');
  (* the paper's S2 = {1,0,0,0,1} preserves four of five *)
  let s2 = A.of_list 5 [ (1, true); (2, false); (3, false); (4, false); (5, true) ] in
  check Alcotest.bool "paper's S2 works" true (A.satisfies s2 f');
  check Alcotest.int "S2 preserves 4" 4 (A.preserved_count ~old_assignment:s s2);
  (* and preserving EC finds a 4-preserving optimum *)
  let r = Ec_core.Preserving.resolve f' ~reference:s in
  check Alcotest.int "optimum is 4" 4 r.Ec_core.Preserving.preserved;
  check Alcotest.bool "proved" true r.Ec_core.Preserving.optimal;
  (* the paper's S1 = {0,1,1,1,0} preserves only one — strictly worse *)
  let s1 = A.of_list 5 [ (1, false); (2, true); (3, true); (4, true); (5, false) ] in
  check Alcotest.bool "paper's S1 also satisfies" true (A.satisfies s1 f');
  check Alcotest.int "S1 preserves 1" 1 (A.preserved_count ~old_assignment:s s1)

(* ---- §5: the enabling ILP on the §3 example formula ---- *)

let test_section5_enabling_ilp () =
  let f = F.of_lists ~num_vars:3 [ [ -1; 2 ]; [ 2; 3 ]; [ 1; -3 ] ] in
  let enc = Ec_core.Encode.of_formula f in
  let info = Ec_core.Enabling.add Ec_core.Enabling.Constraints enc in
  (* one Z per literal occurrence: clauses have 2+2+2 literals *)
  check Alcotest.int "support vars" 6 info.Ec_core.Enabling.support_vars;
  let s, _ = Ec_ilpsolver.Bnb.solve_decision (Ec_core.Encode.model enc) in
  match Ec_core.Encode.decode enc s with
  | Some a ->
    check Alcotest.bool "decoded solution is enabled" true (Ec_core.Enabling.verify f a)
  | None -> Alcotest.fail "the example is enableable"

let tests =
  [ ( "paper.section1",
      [ Alcotest.test_case "S and E both satisfy F" `Quick test_both_satisfy;
        Alcotest.test_case "E tolerates every elimination" `Quick
          test_e_tolerates_everything;
        Alcotest.test_case "S is fragile" `Quick test_s_fragile;
        Alcotest.test_case "v3 elimination repaired locally" `Quick
          test_v3_elimination_repair ] );
    ( "paper.section3",
      [ Alcotest.test_case "set-cover subsets" `Quick test_section3_encoding ] );
    ( "paper.section5",
      [ Alcotest.test_case "enabling ILP on the example" `Quick
          test_section5_enabling_ilp ] );
    ( "paper.section6",
      [ Alcotest.test_case "fast EC example" `Quick test_section6_fast_ec ] );
    ( "paper.section7",
      [ Alcotest.test_case "preserving example (4 of 5)" `Quick
          test_section7_preserving ] ) ]
