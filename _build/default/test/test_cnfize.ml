(* Tests for Ec_core.Cnfize: exact CNF translation of ±1-coefficient
   0-1 models, cross-checked against branch & bound. *)

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

module M = Ec_ilp.Model
module E = Ec_ilp.Linexpr
module C = Ec_core.Cnfize

let test_simple_rows () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let y = M.add_var m M.Binary in
  let z = M.add_var m M.Binary in
  (* x + y + z >= 2;  x + y <= 1 *)
  M.add_constr m (E.of_terms [ (1.0, x); (1.0, y); (1.0, z) ]) M.Ge 2.0;
  M.add_constr m (E.of_terms [ (1.0, x); (1.0, y) ]) M.Le 1.0;
  let cnf = C.of_model m in
  (match Ec_sat.Cdcl.solve_formula cnf.C.formula with
  | Ec_sat.Outcome.Sat a ->
    let p = C.point_of_assignment cnf a in
    check Alcotest.bool "point feasible" true (Ec_ilp.Validate.is_feasible m p);
    check (Alcotest.float 1e-9) "z forced" 1.0 p.(z)
  | _ -> Alcotest.fail "satisfiable")

let test_infeasible_row () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  M.add_constr m (E.of_terms [ (1.0, x) ]) M.Ge 2.0;
  let cnf = C.of_model m in
  check Alcotest.string "trivially unsat" "unsat"
    (Ec_sat.Outcome.to_string (Ec_sat.Cdcl.solve_formula cnf.C.formula))

let test_unsupported () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  M.add_constr m (E.of_terms [ (2.0, x) ]) M.Le 1.0;
  check Alcotest.bool "general coefficients rejected" false (C.supported m);
  (match C.of_model m with
  | exception C.Unsupported _ -> ()
  | _ -> Alcotest.fail "must raise")

let test_negative_coefficients () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let y = M.add_var m M.Binary in
  (* x - y <= -1  <=>  x=0, y=1 *)
  M.add_constr m (E.of_terms [ (1.0, x); (-1.0, y) ]) M.Le (-1.0);
  let cnf = C.of_model m in
  match Ec_sat.Cdcl.solve_formula cnf.C.formula with
  | Ec_sat.Outcome.Sat a ->
    let p = C.point_of_assignment cnf a in
    check (Alcotest.float 1e-9) "x" 0.0 p.(x);
    check (Alcotest.float 1e-9) "y" 1.0 p.(y)
  | _ -> Alcotest.fail "satisfiable"

(* random ±1 models: CNF satisfiability must equal B&B feasibility,
   and decoded points must validate *)
let prop_cnfize_equisatisfiable =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 7 in
      let* nrows = int_range 1 8 in
      let row =
        let* terms =
          list_repeat n (oneofl [ Some 1.0; Some (-1.0); None; None ])
        in
        let* rel = oneofl [ M.Le; M.Ge; M.Eq ] in
        let* rhs = map float_of_int (int_range (-2) 3) in
        return (terms, rel, rhs)
      in
      let* rows = list_repeat nrows row in
      return (n, rows))
  in
  QCheck.Test.make ~name:"cnfize equisatisfiable with bnb" ~count:300 (QCheck.make gen)
    (fun (n, rows) ->
      let m = M.create () in
      for _ = 1 to n do
        ignore (M.add_var m M.Binary)
      done;
      List.iter
        (fun (terms, rel, rhs) ->
          let terms =
            List.filteri (fun i _ -> i < n) terms
            |> List.mapi (fun i c -> Option.map (fun c -> (c, i)) c)
            |> List.filter_map Fun.id
          in
          if terms <> [] then M.add_constr m (E.of_terms terms) rel rhs)
        rows;
      let bnb, _ = Ec_ilpsolver.Bnb.solve_decision m in
      let cnf = C.of_model m in
      match (Ec_sat.Cdcl.solve_formula cnf.C.formula, Ec_ilp.Solution.has_point bnb) with
      | Ec_sat.Outcome.Sat a, true ->
        Ec_ilp.Validate.is_feasible m (C.point_of_assignment cnf a)
      | Ec_sat.Outcome.Unsat, false -> true
      | _, _ -> false)

(* the flagship use: enabling models solved through the CDCL backend *)
let test_enabling_model_via_cdcl () =
  let inst =
    Ec_instances.Registry.build
      (Ec_instances.Registry.scale 0.15 (Ec_instances.Registry.find "jnh201"))
  in
  let enc = Ec_core.Encode.of_formula inst.formula in
  ignore (Ec_core.Enabling.add Ec_core.Enabling.Constraints enc);
  let model = Ec_core.Encode.model enc in
  check Alcotest.bool "enabling model is clause-like" true (C.supported model);
  let solution = Ec_core.Backend.solve_model Ec_core.Backend.cdcl model in
  check Alcotest.bool "solved" true (Ec_ilp.Solution.has_point solution);
  match Ec_core.Encode.decode enc solution with
  | Some a ->
    check Alcotest.bool "decoded solution is enabled" true
      (Ec_core.Enabling.verify inst.formula a)
  | None -> Alcotest.fail "decodable"

let test_preserving_model_unsupported_is_handled () =
  (* the cnfize fragment covers our models; a synthetic general row
     must route to the B&B fallback inside Backend.solve_model *)
  let m = M.create () in
  let x = M.add_var m M.Binary in
  M.add_constr m (E.of_terms [ (3.0, x) ]) M.Le 2.0;
  M.set_objective m M.Minimize (E.var x);
  let s = Ec_core.Backend.solve_model Ec_core.Backend.cdcl m in
  check Alcotest.bool "fallback solved it" true (Ec_ilp.Solution.has_point s);
  check (Alcotest.float 1e-9) "x forced to 0" 0.0 (Ec_ilp.Solution.value s x)

let tests =
  [ ( "core.cnfize",
      [ Alcotest.test_case "simple rows" `Quick test_simple_rows;
        Alcotest.test_case "infeasible row" `Quick test_infeasible_row;
        Alcotest.test_case "unsupported coefficients" `Quick test_unsupported;
        Alcotest.test_case "negative coefficients" `Quick test_negative_coefficients;
        Alcotest.test_case "enabling model via CDCL backend" `Quick
          test_enabling_model_via_cdcl;
        Alcotest.test_case "fallback for general rows" `Quick
          test_preserving_model_unsupported_is_handled;
        qtest prop_cnfize_equisatisfiable ] ) ]
