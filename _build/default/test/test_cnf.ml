(* Tests for Ec_cnf: Lit, Clause, Formula, Assignment, Dimacs, Ksat,
   Change. *)

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

module L = Ec_cnf.Lit
module C = Ec_cnf.Clause
module F = Ec_cnf.Formula
module A = Ec_cnf.Assignment
module K = Ec_cnf.Ksat

let formula_testable = Alcotest.testable (fun fmt f -> Format.pp_print_string fmt (F.to_string f)) F.equal

(* ---- Lit ---- *)

let test_lit_basics () =
  check Alcotest.int "make positive" 3 (L.make 3 true);
  check Alcotest.int "make negative" (-3) (L.make 3 false);
  check Alcotest.int "var" 7 (L.var (-7));
  check Alcotest.bool "polarity" false (L.is_positive (-2));
  check Alcotest.int "negate" 5 (L.negate (-5));
  check Alcotest.string "to_string" "~v3" (L.to_string (-3));
  Alcotest.check_raises "zero" (Invalid_argument "Lit.of_int: 0 is not a literal")
    (fun () -> ignore (L.of_int 0));
  Alcotest.check_raises "bad var" (Invalid_argument "Lit.make: variable must be >= 1")
    (fun () -> ignore (L.make 0 true))

let test_lit_order () =
  (* variable-major, positive before negative *)
  check Alcotest.bool "v1 < v2" true (L.compare 1 2 < 0);
  check Alcotest.bool "v1 < ~v1" true (L.compare 1 (-1) < 0);
  check Alcotest.bool "~v1 < v2" true (L.compare (-1) 2 < 0)

(* ---- Clause ---- *)

let test_clause_normalization () =
  let c = C.make [ 3; -5; 1; 3 ] in
  check (Alcotest.array Alcotest.int) "sorted, deduped" [| 1; 3; -5 |] (C.lits c);
  check Alcotest.int "size" 3 (C.size c);
  Alcotest.check_raises "tautology" C.Tautology (fun () -> ignore (C.make [ 1; -1 ]));
  check Alcotest.bool "make_opt tautology" true (C.make_opt [ 2; -2 ] = None)

let test_clause_queries () =
  let c = C.make [ 1; -3; 5 ] in
  check Alcotest.bool "mem" true (C.mem (-3) c);
  check Alcotest.bool "mem wrong phase" false (C.mem 3 c);
  check Alcotest.bool "mem_var" true (C.mem_var 3 c);
  check Alcotest.int "max_var" 5 (C.max_var c);
  check Alcotest.bool "empty" true (C.is_empty (C.make []));
  check Alcotest.int "max_var empty" 0 (C.max_var (C.make []))

let test_clause_remove_var () =
  let c = C.make [ 1; -3; 5 ] in
  check (Alcotest.array Alcotest.int) "removed" [| 1; 5 |] (C.lits (C.remove_var 3 c));
  check Alcotest.bool "absent var: same clause" true (C.remove_var 9 c == c);
  let c2 = C.remove_var 1 (C.remove_var 5 (C.remove_var 3 c)) in
  check Alcotest.bool "empties out" true (C.is_empty c2)

let test_clause_strings () =
  check Alcotest.string "paper notation" "(v1 + ~v3)" (C.to_string (C.make [ -3; 1 ]));
  check Alcotest.string "dimacs" "1 -3 0" (C.to_dimacs (C.make [ -3; 1 ]))

(* ---- Formula ---- *)

let test_formula_create () =
  let f = F.of_lists ~num_vars:3 [ [ 1; 2 ]; [ -2; 3 ]; [ 1; -1 ] ] in
  (* tautology dropped *)
  check Alcotest.int "clauses" 2 (F.num_clauses f);
  check Alcotest.int "vars" 3 (F.num_vars f);
  Alcotest.check_raises "var above range"
    (Invalid_argument "Formula.create: clause (v5) mentions variable above 3") (fun () ->
      ignore (F.create ~num_vars:3 [ C.make [ 5 ] ]))

let test_formula_occurrences () =
  let f = F.of_lists ~num_vars:3 [ [ 1; 2 ]; [ -1; 3 ]; [ 1; -3 ] ] in
  check (Alcotest.list Alcotest.int) "pos occurrences" [ 0; 2 ] (F.occurrences f 1);
  check (Alcotest.list Alcotest.int) "neg occurrences" [ 1 ] (F.occurrences f (-1));
  check (Alcotest.list Alcotest.int) "var occurrences" [ 0; 1; 2 ] (F.var_occurrences f 1);
  check (Alcotest.list Alcotest.int) "unused" [] (F.occurrences f 2 |> List.filter (fun i -> i > 5))

let test_formula_changes () =
  let f = F.of_lists ~num_vars:2 [ [ 1; 2 ] ] in
  let f2 = F.add_clause f (C.make [ -1; 2 ]) in
  check Alcotest.int "add_clause" 2 (F.num_clauses f2);
  check Alcotest.int "original untouched" 1 (F.num_clauses f);
  let f3 = F.add_clause f2 (C.make [ 4 ]) in
  check Alcotest.int "add_clause grows vars" 4 (F.num_vars f3);
  let f4 = F.remove_clause f2 0 in
  check formula_testable "remove_clause shifts" (F.of_lists ~num_vars:2 [ [ -1; 2 ] ]) f4;
  check Alcotest.int "add_var" 3 (F.num_vars (F.add_var f))

let test_formula_eliminate () =
  let f = F.of_lists ~num_vars:3 [ [ 1; 2 ]; [ -2; 3 ]; [ 2 ] ] in
  let f' = F.eliminate_var f 2 in
  check Alcotest.bool "empty clause appears" true (F.has_empty_clause f');
  check Alcotest.int "var count unchanged" 3 (F.num_vars f');
  check (Alcotest.list Alcotest.int) "v2 gone" [ 1; 3 ] (F.vars_used f')

let formula_gen =
  (* random small formulas for property tests *)
  QCheck.Gen.(
    let* n = int_range 3 10 in
    let* m = int_range 1 25 in
    let clause =
      let* w = int_range 1 (min 4 n) in
      let* vars = QCheck.Gen.shuffle_l (List.init n (fun i -> i + 1)) in
      let vars = List.filteri (fun i _ -> i < w) vars in
      let* signs = list_repeat w bool in
      return (List.map2 (fun v s -> if s then v else -v) vars signs)
    in
    let* clauses = list_repeat m clause in
    return (F.of_lists ~num_vars:n clauses))

let arbitrary_formula = QCheck.make ~print:F.to_string formula_gen

let prop_add_remove_roundtrip =
  QCheck.Test.make ~name:"add then remove clause is identity" ~count:200 arbitrary_formula
    (fun f ->
      let c = C.make [ 1; 2 ] in
      let f2 = F.add_clause f c in
      F.equal (F.remove_clause f2 (F.num_clauses f2 - 1)) f)

let prop_eliminate_shrinks =
  QCheck.Test.make ~name:"eliminate removes all occurrences" ~count:200 arbitrary_formula
    (fun f ->
      let v = 1 + (F.num_vars f / 2) in
      let f' = F.eliminate_var f v in
      F.var_occurrences f' v = [])

(* ---- Assignment ---- *)

let test_assignment_basics () =
  let a = A.of_list 4 [ (1, true); (3, false) ] in
  check Alcotest.bool "v1 true" true (A.value a 1 = A.True);
  check Alcotest.bool "v2 dc" true (A.value a 2 = A.Dc);
  check Alcotest.bool "v3 false" true (A.value a 3 = A.False);
  check Alcotest.int "dc count" 2 (A.dc_count a);
  check (Alcotest.list Alcotest.int) "assigned" [ 1; 3 ] (A.assigned_vars a);
  check Alcotest.string "to_string" "{v1=1, v2=*, v3=0, v4=*}" (A.to_string a);
  Alcotest.check_raises "conflicting of_list"
    (Invalid_argument "Assignment.of_list: conflicting values for v1") (fun () ->
      ignore (A.of_list 2 [ (1, true); (1, false) ]))

let test_assignment_lit_eval () =
  let a = A.of_list 3 [ (1, true); (2, false) ] in
  check Alcotest.bool "pos lit true" true (A.lit_true a 1);
  check Alcotest.bool "neg lit true" true (A.lit_true a (-2));
  check Alcotest.bool "dc lit not true" false (A.lit_true a 3);
  check Alcotest.bool "dc lit not false" false (A.lit_false a 3);
  check Alcotest.bool "pos lit of false var" true (A.lit_false a 2)

let test_assignment_satisfies () =
  let f = F.of_lists ~num_vars:3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  let a = A.of_list 3 [ (1, true); (3, true) ] in
  check Alcotest.bool "satisfies" true (A.satisfies a f);
  check Alcotest.int "sat count" 1 (A.clause_sat_count a (F.clause f 0));
  let b = A.of_list 3 [ (1, true) ] in
  check (Alcotest.list Alcotest.int) "unsat clauses" [ 1 ] (A.unsatisfied_clauses b f)

let test_assignment_preserved () =
  let a = A.of_list 4 [ (1, true); (2, false); (3, true) ] in
  let b = A.of_list 4 [ (1, true); (2, true); (3, true) ] in
  check Alcotest.int "preserved count" 3 (A.preserved_count ~old_assignment:a b);
  (* v4 DC in both counts as preserved; v2 differs *)
  check (Alcotest.float 1e-9) "preserved fraction" 0.75
    (A.preserved_fraction ~old_assignment:a b)

let test_assignment_merge () =
  let base = A.of_list 3 [ (1, true); (2, false) ] in
  let overlay = A.of_list 3 [ (2, true) ] in
  let m = A.merge ~base ~overlay in
  check Alcotest.bool "overlay wins where assigned" true (A.value m 2 = A.True);
  check Alcotest.bool "base kept elsewhere" true (A.value m 1 = A.True);
  let m2 = A.merge_on ~vars:[ 1 ] ~base ~overlay in
  check Alcotest.bool "merge_on takes overlay even if DC" true (A.value m2 1 = A.Dc);
  check Alcotest.bool "merge_on leaves others" true (A.value m2 2 = A.False)

let test_assignment_extend () =
  let a = A.of_list 2 [ (1, true) ] in
  let b = A.extend a 4 in
  check Alcotest.int "extended" 4 (A.num_vars b);
  check Alcotest.bool "new vars DC" true (A.value b 4 = A.Dc);
  check Alcotest.bool "extend same size is identity" true (A.extend a 2 == a);
  Alcotest.check_raises "shrink" (Invalid_argument "Assignment.extend: shrinking")
    (fun () -> ignore (A.extend a 1))

(* ---- Dimacs ---- *)

let test_dimacs_roundtrip () =
  let f = F.of_lists ~num_vars:4 [ [ 1; -2 ]; [ 3; 4; -1 ]; [ 2 ] ] in
  let f2 = Ec_cnf.Dimacs.parse_string (Ec_cnf.Dimacs.to_string ~comment:"test" f) in
  check formula_testable "roundtrip" f f2

let test_dimacs_parse_quirks () =
  let f =
    Ec_cnf.Dimacs.parse_string
      "c comment\np cnf 3 2\n1 -2 0\n3\n-1 0\n%\n0\nthis is ignored after %"
  in
  check Alcotest.int "clauses (multi-line clause)" 2 (F.num_clauses f);
  check Alcotest.int "vars" 3 (F.num_vars f)

let test_dimacs_errors () =
  let expect_error s =
    match Ec_cnf.Dimacs.parse_string s with
    | exception Ec_cnf.Dimacs.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for " ^ s)
  in
  expect_error "1 2 0\n";
  expect_error "p cnf 2 1\n5 0\n";
  expect_error "p cnf 2 1\np cnf 2 1\n";
  expect_error "p cnf a b\n";
  expect_error "p cnf 2 1\n1 2\n"

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"dimacs roundtrip on random formulas" ~count:200
    arbitrary_formula (fun f ->
      F.equal f (Ec_cnf.Dimacs.parse_string (Ec_cnf.Dimacs.to_string f)))

let test_dimacs_solution () =
  let a = A.of_list 3 [ (1, true); (3, false) ] in
  check Alcotest.string "v-line skips DC" "v 1 -3 0" (Ec_cnf.Dimacs.solution_to_string a)

(* ---- Ksat ---- *)

(* the paper's §1 instance *)
let paper_f =
  F.of_lists ~num_vars:5 [ [ 1; -3; -5 ]; [ 2; -3; -5 ]; [ 2; 4; 5 ]; [ -3; -4 ] ]

let paper_s = A.of_list 5 [ (1, false); (2, true); (3, true); (4, false); (5, false) ]

let paper_e = A.of_list 5 [ (1, true); (2, true); (3, false); (4, true); (5, false) ]

let test_ksat_flip_breaks () =
  (* flipping v2 in S breaks the clauses only v2 satisfies *)
  check Alcotest.bool "v2 flip breaks something" true (K.flip_breaks paper_f paper_s 2 <> []);
  check Alcotest.bool "E flips all safe or repairable" true (K.enabled paper_f paper_e);
  check Alcotest.bool "S is not enabled" false (K.enabled paper_f paper_s)

let test_ksat_dc_flip_free () =
  let f = F.of_lists ~num_vars:2 [ [ 1; 2 ] ] in
  let a = A.of_list 2 [ (1, true) ] in
  check (Alcotest.list Alcotest.int) "DC var flip breaks nothing" [] (K.flip_breaks f a 2);
  check Alcotest.bool "flip_safe DC" true (K.flip_safe f a 2)

let test_ksat_supporters () =
  let f = F.of_lists ~num_vars:3 [ [ 1; 2 ]; [ -2; 3 ] ] in
  let a = A.of_list 3 [ (1, true); (2, false); (3, true) ] in
  (* clause 0 is 1-sat via v1; v2 is false there; flipping v2 to true
     endangers clause 1 (-2), but clause 1 has v3 true => safe *)
  check (Alcotest.list Alcotest.int) "supporter found" [ 2 ]
    (K.supporters f a (F.clause f 0))

let test_ksat_report () =
  let r = K.analyze paper_f paper_e in
  check Alcotest.int "total" 4 r.K.clauses_total;
  check Alcotest.int "unsat" 0 r.K.clauses_unsat;
  check Alcotest.int "fragile" 0 r.K.clauses_fragile;
  check (Alcotest.float 1e-9) "flexibility" 1.0 (K.flexibility r)

let test_ksat_tolerates () =
  check Alcotest.bool "E tolerates v3 elimination" true
    (K.tolerates_elimination paper_f paper_e 3);
  check Alcotest.bool "S does not tolerate v2" false
    (K.tolerates_elimination paper_f paper_s 2)

(* ---- Change ---- *)

let test_change_apply () =
  let f = F.of_lists ~num_vars:3 [ [ 1; 2 ]; [ -2; 3 ] ] in
  let ch = Ec_cnf.Change.Add_clause (C.make [ -1; -3 ]) in
  check Alcotest.int "add" 3 (F.num_clauses (Ec_cnf.Change.apply f ch));
  check Alcotest.bool "tightening" true (Ec_cnf.Change.is_tightening ch);
  check Alcotest.bool "add var loosens" false
    (Ec_cnf.Change.is_tightening Ec_cnf.Change.Add_var);
  let script = [ Ec_cnf.Change.Add_var; Ec_cnf.Change.Eliminate_var 2 ] in
  let f' = Ec_cnf.Change.apply_script f script in
  check Alcotest.int "script vars" 4 (F.num_vars f');
  check (Alcotest.list Alcotest.int) "script eliminated" [ 1; 3 ] (F.vars_used f')

let test_change_random_clause () =
  let rng = Ec_util.Rng.create 9 in
  for _ = 1 to 100 do
    let c = Ec_cnf.Change.random_clause rng ~num_vars:8 ~width:3 in
    check Alcotest.int "width" 3 (C.size c)
  done;
  Alcotest.check_raises "width too big" (Invalid_argument "Change.random_clause: width")
    (fun () -> ignore (Ec_cnf.Change.random_clause rng ~num_vars:2 ~width:3))

let test_change_anchored_clause () =
  let rng = Ec_util.Rng.create 10 in
  let a = A.of_list 6 [ (1, true); (2, false); (3, true) ] in
  for _ = 1 to 100 do
    let c = Ec_cnf.Change.random_clause_satisfied_by rng a ~num_vars:6 ~width:3 in
    check Alcotest.bool "anchored satisfied" true (A.satisfies_clause a c)
  done

let test_fast_ec_script () =
  let rng = Ec_util.Rng.create 11 in
  let f =
    F.of_lists ~num_vars:8
      [ [ 1; 2; 3 ]; [ -1; 4; 5 ]; [ 2; -5; 6 ]; [ 7; 8; -2 ]; [ -7; 3; 1 ] ]
  in
  let script = Ec_cnf.Change.fast_ec_script rng f ~eliminate:2 ~add:5 ~clause_width:3 in
  let elims =
    List.length
      (List.filter
         (function Ec_cnf.Change.Eliminate_var _ -> true | _ -> false)
         script)
  in
  let adds =
    List.length
      (List.filter (function Ec_cnf.Change.Add_clause _ -> true | _ -> false) script)
  in
  check Alcotest.int "eliminations" 2 elims;
  check Alcotest.int "additions" 5 adds;
  (* applying never creates an empty clause (eliminable_vars filter) *)
  let f' = Ec_cnf.Change.apply_script f script in
  check Alcotest.bool "no empty clause" false (F.has_empty_clause f')

let test_preserving_script_constructive () =
  let rng = Ec_util.Rng.create 12 in
  let f =
    F.of_lists ~num_vars:10
      (List.init 20 (fun i -> [ 1 + (i mod 8); -(2 + (i mod 7)); 1 + ((i + 3) mod 10) ]))
  in
  match Ec_sat.Cdcl.solve_formula f with
  | Ec_sat.Outcome.Sat reference ->
    let script =
      Ec_cnf.Change.preserving_ec_script rng f ~reference ~add_vars:2 ~del_vars:2
        ~add_clauses:3 ~del_clauses:3 ~clause_width:3
    in
    let f' = Ec_cnf.Change.apply_script f script in
    (* constructive mode keeps the instance satisfiable *)
    check Alcotest.bool "still satisfiable" true
      (Ec_sat.Outcome.is_sat (Ec_sat.Cdcl.solve_formula f'))
  | _ -> Alcotest.fail "base formula should be satisfiable"

let prop_preserving_script_checked =
  QCheck.Test.make ~name:"checked preserving script keeps satisfiability" ~count:25
    arbitrary_formula (fun f ->
      match Ec_sat.Cdcl.solve_formula f with
      | Ec_sat.Outcome.Sat reference ->
        let rng = Ec_util.Rng.create 77 in
        let satisfiable g = Ec_sat.Outcome.is_sat (Ec_sat.Cdcl.solve_formula g) in
        let script =
          Ec_cnf.Change.preserving_ec_script ~satisfiable rng f ~reference ~add_vars:1
            ~del_vars:1 ~add_clauses:2 ~del_clauses:1 ~clause_width:2
        in
        satisfiable (Ec_cnf.Change.apply_script f script)
      | Ec_sat.Outcome.Unsat -> QCheck.assume_fail ()
      | Ec_sat.Outcome.Unknown _ -> false)

let tests =
  [ ( "cnf.lit",
      [ Alcotest.test_case "basics" `Quick test_lit_basics;
        Alcotest.test_case "ordering" `Quick test_lit_order ] );
    ( "cnf.clause",
      [ Alcotest.test_case "normalization" `Quick test_clause_normalization;
        Alcotest.test_case "queries" `Quick test_clause_queries;
        Alcotest.test_case "remove_var" `Quick test_clause_remove_var;
        Alcotest.test_case "strings" `Quick test_clause_strings ] );
    ( "cnf.formula",
      [ Alcotest.test_case "create" `Quick test_formula_create;
        Alcotest.test_case "occurrences" `Quick test_formula_occurrences;
        Alcotest.test_case "changes" `Quick test_formula_changes;
        Alcotest.test_case "eliminate" `Quick test_formula_eliminate;
        qtest prop_add_remove_roundtrip;
        qtest prop_eliminate_shrinks ] );
    ( "cnf.assignment",
      [ Alcotest.test_case "basics" `Quick test_assignment_basics;
        Alcotest.test_case "literal evaluation" `Quick test_assignment_lit_eval;
        Alcotest.test_case "satisfies" `Quick test_assignment_satisfies;
        Alcotest.test_case "preserved" `Quick test_assignment_preserved;
        Alcotest.test_case "merge" `Quick test_assignment_merge;
        Alcotest.test_case "extend" `Quick test_assignment_extend ] );
    ( "cnf.dimacs",
      [ Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
        Alcotest.test_case "parser quirks" `Quick test_dimacs_parse_quirks;
        Alcotest.test_case "errors" `Quick test_dimacs_errors;
        Alcotest.test_case "solution line" `Quick test_dimacs_solution;
        qtest prop_dimacs_roundtrip ] );
    ( "cnf.ksat",
      [ Alcotest.test_case "flip_breaks" `Quick test_ksat_flip_breaks;
        Alcotest.test_case "DC flips are free" `Quick test_ksat_dc_flip_free;
        Alcotest.test_case "supporters" `Quick test_ksat_supporters;
        Alcotest.test_case "report" `Quick test_ksat_report;
        Alcotest.test_case "tolerates elimination" `Quick test_ksat_tolerates ] );
    ( "cnf.change",
      [ Alcotest.test_case "apply" `Quick test_change_apply;
        Alcotest.test_case "random clause" `Quick test_change_random_clause;
        Alcotest.test_case "anchored clause" `Quick test_change_anchored_clause;
        Alcotest.test_case "fast-EC script" `Quick test_fast_ec_script;
        Alcotest.test_case "preserving script (constructive)" `Quick
          test_preserving_script_constructive;
        qtest prop_preserving_script_checked ] ) ]
