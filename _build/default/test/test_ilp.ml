(* Tests for Ec_ilp: Linexpr, Model, Solution, Validate. *)

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

module E = Ec_ilp.Linexpr
module M = Ec_ilp.Model
module S = Ec_ilp.Solution
module V = Ec_ilp.Validate

let feq = Alcotest.float 1e-9

(* ---- Linexpr ---- *)

let test_linexpr_normalization () =
  let e = E.of_terms [ (2.0, 1); (3.0, 0); (-2.0, 1) ] in
  check (Alcotest.list (Alcotest.pair feq Alcotest.int)) "merged and pruned"
    [ (3.0, 0) ] (E.terms e);
  check Alcotest.bool "zero scale" true (E.equal E.zero (E.scale 0.0 e));
  check feq "coeff absent" 0.0 (E.coeff e 5);
  check feq "coeff present" 3.0 (E.coeff e 0)

let test_linexpr_arith () =
  let a = E.of_terms ~constant:1.0 [ (2.0, 0); (1.0, 1) ] in
  let b = E.of_terms ~constant:(-1.0) [ (1.0, 0); (-1.0, 2) ] in
  let s = E.add a b in
  check feq "const" 0.0 (E.const_part s);
  check feq "x0" 3.0 (E.coeff s 0);
  check feq "x2" (-1.0) (E.coeff s 2);
  let d = E.sub s b in
  check Alcotest.bool "sub undoes add" true (E.equal d a);
  check Alcotest.bool "sum" true
    (E.equal (E.sum [ a; b ]) s)

let test_linexpr_eval () =
  let e = E.of_terms ~constant:5.0 [ (2.0, 0); (-1.0, 1) ] in
  check feq "eval" 5.0 (E.eval (fun i -> float_of_int (i + 1)) e);
  check Alcotest.bool "is_constant" true (E.is_constant (E.constant 3.0));
  check Alcotest.bool "not constant" false (E.is_constant e)

let test_linexpr_to_string () =
  let e = E.of_terms ~constant:(-2.0) [ (1.0, 0); (-1.0, 1); (2.5, 2) ] in
  check Alcotest.string "rendering" "x0 - x1 + 2.5*x2 - 2" (E.to_string e);
  check Alcotest.string "zero" "0" (E.to_string E.zero)

let prop_eval_linear =
  QCheck.Test.make ~name:"eval is linear in scaling" ~count:200
    QCheck.(pair (float_range (-5.) 5.) (small_list (pair (float_range (-4.) 4.) (int_range 0 6))))
    (fun (k, terms) ->
      let e = E.of_terms terms in
      let v i = float_of_int ((i * 7 mod 5) - 2) in
      abs_float (E.eval v (E.scale k e) -. (k *. E.eval v e)) < 1e-6)

(* ---- Model ---- *)

let test_model_vars () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" M.Binary in
  let y = M.add_var m (M.Continuous (0.0, 2.0)) in
  check Alcotest.int "ids dense" 1 y;
  check Alcotest.int "count" 2 (M.num_vars m);
  check Alcotest.string "named" "x" (M.var_name m x);
  check Alcotest.string "default name" "x1" (M.var_name m y);
  check Alcotest.int "find_var" x (M.find_var m "x");
  check Alcotest.bool "kind" true (M.var_kind m y = M.Continuous (0.0, 2.0));
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Model: variable id 9 out of range [0,2)") (fun () ->
      ignore (M.var_kind m 9))

let test_model_constraints () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  M.add_constr m (E.var x) M.Le 1.0;
  M.add_constr m ~name:"lower" (E.var x) M.Ge 0.0;
  check Alcotest.int "count" 2 (M.num_constrs m);
  let cs = M.constrs m in
  check Alcotest.string "auto name" "c0" cs.(0).M.name;
  check Alcotest.string "explicit name" "lower" cs.(1).M.name;
  Alcotest.check_raises "undeclared variable"
    (Invalid_argument "Model: variable id 5 out of range [0,1)") (fun () ->
      M.add_constr m (E.var 5) M.Le 1.0)

let test_model_objective_default () =
  let m = M.create () in
  let sense, obj = M.objective m in
  check Alcotest.bool "default minimize 0" true
    (sense = M.Minimize && E.equal obj E.zero);
  M.set_objective m M.Maximize (E.constant 1.0);
  let sense, _ = M.objective m in
  check Alcotest.bool "set" true (sense = M.Maximize)

let test_model_relax () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let r = M.relax m in
  check Alcotest.bool "binary relaxed" true (M.var_kind r x = M.Continuous (0.0, 1.0));
  check Alcotest.bool "original untouched" true (M.var_kind m x = M.Binary)

(* ---- Solution ---- *)

let test_solution_values () =
  let s = { S.status = S.Optimal; values = [| 0.0; 1.0; 0.5 |]; objective = 2.0 } in
  check Alcotest.bool "binary 0" false (S.binary_value s 0);
  check Alcotest.bool "binary 1" true (S.binary_value s 1);
  (match S.binary_value s 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0.5 should not round");
  check Alcotest.bool "has_point" true (S.has_point s);
  check Alcotest.bool "infeasible no point" false (S.has_point S.infeasible);
  (match S.value S.unknown 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown carries no point")

(* ---- Validate ---- *)

let test_validate_feasible () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let y = M.add_var m M.Binary in
  M.add_constr m ~name:"cap" (E.of_terms [ (1.0, x); (1.0, y) ]) M.Le 1.0;
  check Alcotest.bool "feasible" true (V.is_feasible m [| 1.0; 0.0 |]);
  check Alcotest.bool "infeasible" false (V.is_feasible m [| 1.0; 1.0 |]);
  (match V.check m [| 1.0; 1.0 |] with
  | [ V.Constraint_violated ("cap", by) ] -> check feq "violation amount" 1.0 by
  | other ->
    Alcotest.failf "unexpected violations: %s"
      (String.concat "; " (List.map V.violation_to_string other)))

let test_validate_integrality_bounds () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let y = M.add_var m (M.Continuous (0.0, 2.0)) in
  (match V.check m [| 0.5; 3.0 |] with
  | [ V.Not_integral (v, _); V.Bound_violated (w, _) ] ->
    check Alcotest.int "fractional binary flagged" x v;
    check Alcotest.int "bound flagged" y w
  | other ->
    Alcotest.failf "unexpected: %s"
      (String.concat "; " (List.map V.violation_to_string other)));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Validate.check: point length mismatch") (fun () ->
      ignore (V.check m [| 1.0 |]))

let test_validate_objective () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  M.set_objective m M.Maximize (E.of_terms ~constant:1.0 [ (3.0, x) ]);
  check feq "objective value" 4.0 (V.objective_value m [| 1.0 |])

let test_validate_eq_relation () =
  let m = M.create () in
  let x = M.add_var m (M.Continuous (0.0, 10.0)) in
  M.add_constr m (E.var x) M.Eq 5.0;
  check Alcotest.bool "eq met" true (V.is_feasible m [| 5.0 |]);
  check Alcotest.bool "eq violated high" false (V.is_feasible m [| 6.0 |]);
  check Alcotest.bool "eq violated low" false (V.is_feasible m [| 4.0 |])

let tests =
  [ ( "ilp.linexpr",
      [ Alcotest.test_case "normalization" `Quick test_linexpr_normalization;
        Alcotest.test_case "arithmetic" `Quick test_linexpr_arith;
        Alcotest.test_case "eval" `Quick test_linexpr_eval;
        Alcotest.test_case "to_string" `Quick test_linexpr_to_string;
        qtest prop_eval_linear ] );
    ( "ilp.model",
      [ Alcotest.test_case "variables" `Quick test_model_vars;
        Alcotest.test_case "constraints" `Quick test_model_constraints;
        Alcotest.test_case "objective default" `Quick test_model_objective_default;
        Alcotest.test_case "relax" `Quick test_model_relax ] );
    ( "ilp.solution",
      [ Alcotest.test_case "values and statuses" `Quick test_solution_values ] );
    ( "ilp.validate",
      [ Alcotest.test_case "feasibility" `Quick test_validate_feasible;
        Alcotest.test_case "integrality and bounds" `Quick test_validate_integrality_bounds;
        Alcotest.test_case "objective" `Quick test_validate_objective;
        Alcotest.test_case "equality relation" `Quick test_validate_eq_relation ] ) ]
