(* Tests for Ec_ilpsolver: Rows, Bnb (vs brute force), Heuristic. *)

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

module M = Ec_ilp.Model
module E = Ec_ilp.Linexpr
module S = Ec_ilp.Solution
module B = Ec_ilpsolver.Bnb
module H = Ec_ilpsolver.Heuristic
module R = Ec_ilpsolver.Rows

let feq = Alcotest.float 1e-6

(* ---- random 0-1 model generator + brute force ---- *)

type rand_model = {
  nvars : int;
  rows : (float array * M.relation * float) list;
  obj : float array;
  maximize : bool;
}

let build_model rm =
  let m = M.create () in
  for _ = 1 to rm.nvars do
    ignore (M.add_var m M.Binary)
  done;
  List.iter
    (fun (coeffs, rel, rhs) ->
      let terms = Array.to_list (Array.mapi (fun i c -> (c, i)) coeffs) in
      let terms = List.filter (fun (c, _) -> c <> 0.0) terms in
      M.add_constr m (E.of_terms terms) rel rhs)
    rm.rows;
  let obj_terms =
    List.filter (fun (c, _) -> c <> 0.0)
      (Array.to_list (Array.mapi (fun i c -> (c, i)) rm.obj))
  in
  M.set_objective m (if rm.maximize then M.Maximize else M.Minimize) (E.of_terms obj_terms);
  m

(* Exhaustive optimum over {0,1}^n; None if infeasible. *)
let brute_force rm =
  let best = ref None in
  let n = rm.nvars in
  for mask = 0 to (1 lsl n) - 1 do
    let x i = if mask land (1 lsl i) <> 0 then 1.0 else 0.0 in
    let feasible =
      List.for_all
        (fun (coeffs, rel, rhs) ->
          let lhs = ref 0.0 in
          Array.iteri (fun i c -> lhs := !lhs +. (c *. x i)) coeffs;
          match rel with
          | M.Le -> !lhs <= rhs +. 1e-9
          | M.Ge -> !lhs >= rhs -. 1e-9
          | M.Eq -> abs_float (!lhs -. rhs) <= 1e-9)
        rm.rows
    in
    if feasible then begin
      let v = ref 0.0 in
      Array.iteri (fun i c -> v := !v +. (c *. x i)) rm.obj;
      let better =
        match !best with
        | None -> true
        | Some b -> if rm.maximize then !v > b +. 1e-12 else !v < b -. 1e-12
      in
      if better then best := Some !v
    end
  done;
  !best

let rand_model_gen =
  QCheck.Gen.(
    let* nvars = int_range 2 8 in
    let* nrows = int_range 1 6 in
    let coeff = map float_of_int (int_range (-3) 3) in
    let row =
      let* coeffs = array_size (return nvars) coeff in
      let* rel = oneofl [ M.Le; M.Ge; M.Eq ] in
      let* rhs = map float_of_int (int_range (-2) 4) in
      return (coeffs, rel, rhs)
    in
    let* rows = list_repeat nrows row in
    let* obj = array_size (return nvars) coeff in
    let* maximize = bool in
    return { nvars; rows; obj; maximize })

let arb_rand_model =
  QCheck.make
    ~print:(fun rm -> M.to_string (build_model rm))
    rand_model_gen

let prop_bnb_matches_brute_force =
  QCheck.Test.make ~name:"bnb optimum = brute force" ~count:400 arb_rand_model
    (fun rm ->
      let model = build_model rm in
      let solution, _ = B.solve model in
      match (brute_force rm, solution.S.status) with
      | None, S.Infeasible -> true
      | Some opt, S.Optimal ->
        abs_float (opt -. solution.S.objective) < 1e-6
        && Ec_ilp.Validate.is_feasible model solution.S.values
      | _, _ -> false)

let prop_bnb_greedy_off_agrees =
  QCheck.Test.make ~name:"bnb optimum independent of greedy completion" ~count:200
    arb_rand_model (fun rm ->
      let model () = build_model rm in
      let s1, _ = B.solve (model ()) in
      let s2, _ =
        B.solve ~options:{ B.default_options with greedy_completion = false } (model ())
      in
      match (s1.S.status, s2.S.status) with
      | S.Optimal, S.Optimal -> abs_float (s1.S.objective -. s2.S.objective) < 1e-6
      | S.Infeasible, S.Infeasible -> true
      | _, _ -> false)

let prop_bnb_lp_bounding_agrees =
  QCheck.Test.make ~name:"bnb optimum independent of LP bounding" ~count:150
    arb_rand_model (fun rm ->
      let model () = build_model rm in
      let s1, _ = B.solve (model ()) in
      let s2, _ =
        B.solve
          ~options:{ B.default_options with use_lp_bounding = true; lp_max_depth = 3 }
          (model ())
      in
      match (s1.S.status, s2.S.status) with
      | S.Optimal, S.Optimal -> abs_float (s1.S.objective -. s2.S.objective) < 1e-6
      | S.Infeasible, S.Infeasible -> true
      | _, _ -> false)

let prop_bnb_branching_agrees =
  QCheck.Test.make ~name:"bnb optimum independent of branching rule" ~count:200
    arb_rand_model (fun rm ->
      let model () = build_model rm in
      let s1, _ = B.solve (model ()) in
      let s2, _ =
        B.solve ~options:{ B.default_options with branching = B.First_unfixed } (model ())
      in
      match (s1.S.status, s2.S.status) with
      | S.Optimal, S.Optimal -> abs_float (s1.S.objective -. s2.S.objective) < 1e-6
      | S.Infeasible, S.Infeasible -> true
      | _, _ -> false)

let prop_heuristic_sound =
  QCheck.Test.make ~name:"heuristic points are feasible" ~count:150 arb_rand_model
    (fun rm ->
      let model = build_model rm in
      let options = { H.default_options with max_flips = 3000; max_restarts = 3 } in
      let solution, _ = H.solve ~options model in
      match solution.S.status with
      | S.Feasible ->
        Ec_ilp.Validate.is_feasible model solution.S.values
        && brute_force rm <> None (* never claims feasible on infeasible models *)
      | S.Unknown -> true
      | S.Optimal | S.Infeasible | S.Unbounded -> false)

(* ---- targeted unit tests ---- *)

let test_bnb_knapsack () =
  let m = M.create () in
  let xs = List.init 4 (fun _ -> M.add_var m M.Binary) in
  let weights = [ 2.0; 3.0; 4.0; 5.0 ] and values = [ 3.0; 4.0; 5.0; 6.0 ] in
  M.add_constr m (E.of_terms (List.map2 (fun w x -> (w, x)) weights xs)) M.Le 5.0;
  M.set_objective m M.Maximize (E.of_terms (List.map2 (fun v x -> (v, x)) values xs));
  let s, stats = B.solve m in
  check Alcotest.string "status" "optimal" (S.status_to_string s.S.status);
  check feq "knapsack optimum" 7.0 s.S.objective;
  check Alcotest.bool "some nodes explored" true (stats.B.nodes > 0)

let test_bnb_infeasible () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let y = M.add_var m M.Binary in
  M.add_constr m (E.of_terms [ (1.0, x); (1.0, y) ]) M.Ge 3.0;
  let s, _ = B.solve m in
  check Alcotest.string "infeasible" "infeasible" (S.status_to_string s.S.status)

let test_bnb_decision_stops_early () =
  (* decision mode returns Feasible (not Optimal) on the first point *)
  let m = M.create () in
  let xs = List.init 6 (fun _ -> M.add_var m M.Binary) in
  M.add_constr m (E.of_terms (List.map (fun x -> (1.0, x)) xs)) M.Ge 1.0;
  M.set_objective m M.Minimize (E.of_terms (List.map (fun x -> (1.0, x)) xs));
  let s, _ = B.solve_decision m in
  check Alcotest.string "feasible" "feasible" (S.status_to_string s.S.status);
  check Alcotest.bool "point valid" true (Ec_ilp.Validate.is_feasible m s.S.values)

let test_bnb_node_budget () =
  (* a big unconstrained-ish optimization with a 1-node budget: Unknown
     or a feasible incumbent, never a bogus Optimal claim on a hard model *)
  let m = M.create () in
  let xs = List.init 16 (fun _ -> M.add_var m M.Binary) in
  List.iteri
    (fun i x ->
      if i > 0 then
        M.add_constr m (E.of_terms [ (1.0, List.nth xs (i - 1)); (1.0, x) ]) M.Ge 1.0)
    xs;
  M.set_objective m M.Minimize (E.of_terms (List.map (fun x -> (1.0, x)) xs));
  let s, _ =
    B.solve
      ~options:{ B.default_options with budget = Ec_util.Budget.create ~nodes:1 () }
      m
  in
  check Alcotest.bool "not optimal under 1-node budget" true
    (s.S.status <> S.Optimal)

let test_bnb_rejects_continuous () =
  let m = M.create () in
  ignore (M.add_var m (M.Continuous (0.0, 1.0)));
  Alcotest.check_raises "continuous rejected"
    (Invalid_argument "Rows.of_model: continuous variable in a 0-1 model") (fun () ->
      ignore (B.solve m))

let test_bnb_tie_seed_changes_solution () =
  (* On a model with many symmetric optima, different tie seeds can
     pick different points (same objective). *)
  let build () =
    let m = M.create () in
    let xs = List.init 8 (fun _ -> M.add_var m M.Binary) in
    M.add_constr m (E.of_terms (List.map (fun x -> (1.0, x)) xs)) M.Ge 4.0;
    m
  in
  let s1, _ = B.solve ~options:{ B.default_options with tie_seed = Some 1 } (build ()) in
  let s2, _ = B.solve ~options:{ B.default_options with tie_seed = Some 2 } (build ()) in
  check Alcotest.bool "both solved" true (S.has_point s1 && S.has_point s2)

let test_heuristic_simple_sat () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let y = M.add_var m M.Binary in
  M.add_constr m (E.of_terms [ (1.0, x); (1.0, y) ]) M.Ge 1.0;
  M.add_constr m (E.of_terms [ (-1.0, x); (1.0, y) ]) M.Ge 0.0;
  let s, stats = H.solve ~options:{ H.default_options with stop_at_first_feasible = true } m in
  check Alcotest.string "feasible" "feasible" (S.status_to_string s.S.status);
  check Alcotest.bool "hit recorded" true (stats.H.feasible_hits >= 1)

let test_heuristic_warm_start () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let y = M.add_var m M.Binary in
  M.add_constr m (E.of_terms [ (1.0, x) ]) M.Ge 1.0;
  M.add_constr m (E.of_terms [ (1.0, y) ]) M.Ge 1.0;
  let options =
    { H.default_options with
      stop_at_first_feasible = true;
      initial_point = Some [| 1; 1 |] }
  in
  let s, stats = H.solve ~options m in
  check Alcotest.string "feasible at once" "feasible" (S.status_to_string s.S.status);
  (* seeded at the solution: no flips needed before the first check *)
  check Alcotest.bool "few flips" true (stats.H.flips <= 1)

let test_rows_normalization () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  M.add_constr m (E.var x) M.Eq 1.0;
  M.set_objective m M.Maximize (E.of_terms ~constant:2.0 [ (3.0, x) ]);
  let sys = R.of_model m in
  check Alcotest.int "eq split into two rows" 2 (Array.length sys.R.rows);
  check Alcotest.bool "flip flag" true sys.R.flip_objective;
  check feq "reported objective" 5.0 (R.report_objective sys (-3.0));
  check Alcotest.bool "point feasible" true (R.point_feasible sys [| 1 |]);
  check Alcotest.bool "point infeasible" false (R.point_feasible sys [| 0 |]);
  check (Alcotest.list Alcotest.int) "violated rows" [ 1 ] (R.violated_rows sys [| 0 |])

let tests =
  [ ( "ilpsolver.bnb",
      [ Alcotest.test_case "knapsack" `Quick test_bnb_knapsack;
        Alcotest.test_case "infeasible" `Quick test_bnb_infeasible;
        Alcotest.test_case "decision mode" `Quick test_bnb_decision_stops_early;
        Alcotest.test_case "node budget" `Quick test_bnb_node_budget;
        Alcotest.test_case "rejects continuous" `Quick test_bnb_rejects_continuous;
        Alcotest.test_case "tie seed" `Quick test_bnb_tie_seed_changes_solution;
        qtest prop_bnb_matches_brute_force;
        qtest prop_bnb_greedy_off_agrees;
        qtest prop_bnb_lp_bounding_agrees;
        qtest prop_bnb_branching_agrees ] );
    ( "ilpsolver.heuristic",
      [ Alcotest.test_case "simple sat" `Quick test_heuristic_simple_sat;
        Alcotest.test_case "warm start" `Quick test_heuristic_warm_start;
        qtest prop_heuristic_sound ] );
    ( "ilpsolver.rows",
      [ Alcotest.test_case "normalization" `Quick test_rows_normalization ] ) ]
