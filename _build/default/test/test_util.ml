(* Tests for Ec_util: Vec, Rng, Stats, Tablefmt, Idx_heap. *)

let check = Alcotest.check

(* ---- Vec ---- *)

let test_vec_push_pop () =
  let v = Ec_util.Vec.create ~dummy:0 () in
  check Alcotest.bool "empty" true (Ec_util.Vec.is_empty v);
  Ec_util.Vec.push v 1;
  Ec_util.Vec.push v 2;
  Ec_util.Vec.push v 3;
  check Alcotest.int "length" 3 (Ec_util.Vec.length v);
  check Alcotest.int "top" 3 (Ec_util.Vec.top v);
  check Alcotest.int "pop" 3 (Ec_util.Vec.pop v);
  check Alcotest.int "length after pop" 2 (Ec_util.Vec.length v)

let test_vec_get_set () =
  let v = Ec_util.Vec.make 4 7 in
  check Alcotest.int "make fills" 7 (Ec_util.Vec.get v 3);
  Ec_util.Vec.set v 2 9;
  check Alcotest.int "set" 9 (Ec_util.Vec.get v 2);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec.get: index 4 out of bounds [0,4)") (fun () ->
      ignore (Ec_util.Vec.get v 4))

let test_vec_growth () =
  let v = Ec_util.Vec.create ~capacity:1 ~dummy:(-1) () in
  for i = 0 to 99 do
    Ec_util.Vec.push v i
  done;
  check Alcotest.int "length" 100 (Ec_util.Vec.length v);
  check Alcotest.int "first" 0 (Ec_util.Vec.get v 0);
  check Alcotest.int "last" 99 (Ec_util.Vec.get v 99)

let test_vec_swap_remove () =
  let v = Ec_util.Vec.of_list ~dummy:0 [ 10; 20; 30; 40 ] in
  let removed = Ec_util.Vec.swap_remove v 1 in
  check Alcotest.int "removed" 20 removed;
  check Alcotest.int "length" 3 (Ec_util.Vec.length v);
  check Alcotest.int "hole filled by last" 40 (Ec_util.Vec.get v 1)

let test_vec_shrink_clear () =
  let v = Ec_util.Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5 ] in
  Ec_util.Vec.shrink v 2;
  check (Alcotest.list Alcotest.int) "shrunk" [ 1; 2 ] (Ec_util.Vec.to_list v);
  Ec_util.Vec.clear v;
  check Alcotest.bool "cleared" true (Ec_util.Vec.is_empty v);
  Alcotest.check_raises "shrink grows" (Invalid_argument "Vec.shrink") (fun () ->
      Ec_util.Vec.shrink v 1)

let test_vec_iterators () =
  let v = Ec_util.Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  check Alcotest.int "fold" 6 (Ec_util.Vec.fold ( + ) 0 v);
  check Alcotest.bool "exists" true (Ec_util.Vec.exists (fun x -> x = 2) v);
  check Alcotest.bool "for_all" true (Ec_util.Vec.for_all (fun x -> x > 0) v);
  let sum = ref 0 in
  Ec_util.Vec.iteri (fun i x -> sum := !sum + (i * x)) v;
  check Alcotest.int "iteri" 8 !sum;
  check (Alcotest.list Alcotest.int) "copy independent"
    [ 1; 2; 3 ]
    (let c = Ec_util.Vec.copy v in
     Ec_util.Vec.set c 0 99;
     Ec_util.Vec.to_list v)

let vec_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Ec_util.Vec.to_list (Ec_util.Vec.of_list ~dummy:0 xs) = xs)

(* ---- Rng ---- *)

let test_rng_determinism () =
  let a = Ec_util.Rng.create 42 and b = Ec_util.Rng.create 42 in
  let xs = List.init 20 (fun _ -> Ec_util.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Ec_util.Rng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same stream" xs ys

let test_rng_seeds_differ () =
  let a = Ec_util.Rng.create 1 and b = Ec_util.Rng.create 2 in
  let xs = List.init 20 (fun _ -> Ec_util.Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Ec_util.Rng.int b 1000000) in
  check Alcotest.bool "different seeds differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Ec_util.Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Ec_util.Rng.int rng 17 in
    assert (x >= 0 && x < 17);
    let f = Ec_util.Rng.float rng in
    assert (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Ec_util.Rng.int rng 0))

let test_rng_sample () =
  let rng = Ec_util.Rng.create 11 in
  (* dense and sparse paths *)
  List.iter
    (fun (k, n) ->
      let xs = Ec_util.Rng.sample rng k n in
      check Alcotest.int "sample size" k (List.length xs);
      check Alcotest.int "distinct" k (List.length (List.sort_uniq compare xs));
      List.iter (fun x -> assert (x >= 0 && x < n)) xs)
    [ (5, 8); (3, 1000); (0, 4); (4, 4) ]

let test_rng_shuffle_permutes () =
  let rng = Ec_util.Rng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  Ec_util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "shuffle is a permutation"
    (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let a = Ec_util.Rng.create 3 in
  let b = Ec_util.Rng.split a in
  let xs = List.init 10 (fun _ -> Ec_util.Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Ec_util.Rng.int b 1000) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let rng_int_uniformish =
  QCheck.Test.make ~name:"rng int covers range" ~count:50
    QCheck.(int_range 2 40)
    (fun bound ->
      let rng = Ec_util.Rng.create bound in
      let seen = Hashtbl.create bound in
      for _ = 1 to 200 * bound do
        Hashtbl.replace seen (Ec_util.Rng.int rng bound) ()
      done;
      Hashtbl.length seen = bound)

(* ---- Stats ---- *)

let feq = Alcotest.float 1e-9

let test_stats_mean_median () =
  check feq "mean" 2.5 (Ec_util.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check feq "median even" 2.5 (Ec_util.Stats.median [ 4.0; 1.0; 3.0; 2.0 ]);
  check feq "median odd" 3.0 (Ec_util.Stats.median [ 5.0; 3.0; 1.0 ]);
  check feq "mean empty" 0.0 (Ec_util.Stats.mean []);
  check feq "median empty" 0.0 (Ec_util.Stats.median [])

let test_stats_stddev () =
  check feq "stddev constant" 0.0 (Ec_util.Stats.stddev [ 2.0; 2.0; 2.0 ]);
  check (Alcotest.float 1e-6) "stddev" 2.0 (Ec_util.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_min_max_geo () =
  check (Alcotest.pair feq feq) "min_max" (1.0, 9.0)
    (Ec_util.Stats.min_max [ 3.0; 1.0; 9.0 ]);
  check (Alcotest.float 1e-9) "geometric mean" 2.0
    (Ec_util.Stats.geometric_mean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "geometric mean rejects 0"
    (Invalid_argument "Stats.geometric_mean: non-positive sample") (fun () ->
      ignore (Ec_util.Stats.geometric_mean [ 1.0; 0.0 ]))

let stats_median_bounds =
  QCheck.Test.make ~name:"median within min/max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Ec_util.Stats.median xs in
      let lo, hi = Ec_util.Stats.min_max xs in
      m >= lo && m <= hi)

(* ---- Tablefmt ---- *)

let test_tablefmt_basic () =
  let t =
    Ec_util.Tablefmt.create
      ~headers:[ ("name", Ec_util.Tablefmt.Left); ("value", Ec_util.Tablefmt.Right) ]
  in
  Ec_util.Tablefmt.add_row t [ "x"; "1" ];
  Ec_util.Tablefmt.add_separator t;
  Ec_util.Tablefmt.add_row t [ "longer"; "22" ];
  let s = Ec_util.Tablefmt.render t in
  check Alcotest.bool "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* right-aligned numbers line up at the column's right edge *)
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "line count" 6 (List.length lines)

let test_tablefmt_arity () =
  let t = Ec_util.Tablefmt.create ~headers:[ ("a", Ec_util.Tablefmt.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tablefmt.add_row: arity mismatch")
    (fun () -> Ec_util.Tablefmt.add_row t [ "x"; "y" ])

let test_tablefmt_cells () =
  check Alcotest.string "float cell" "3.14" (Ec_util.Tablefmt.cell_float 3.14159);
  check Alcotest.string "float decimals" "3.1416"
    (Ec_util.Tablefmt.cell_float ~decimals:4 3.14159);
  check Alcotest.string "int cell" "42" (Ec_util.Tablefmt.cell_int 42)

(* ---- Idx_heap ---- *)

let test_heap_basic () =
  let h = Ec_util.Idx_heap.create 10 in
  Ec_util.Idx_heap.set_priority h 3 5.0;
  Ec_util.Idx_heap.set_priority h 7 9.0;
  Ec_util.Idx_heap.set_priority h 1 1.0;
  List.iter (Ec_util.Idx_heap.insert h) [ 3; 7; 1 ];
  check Alcotest.int "size" 3 (Ec_util.Idx_heap.size h);
  check Alcotest.int "max" 7 (Ec_util.Idx_heap.pop_max h);
  check Alcotest.int "next" 3 (Ec_util.Idx_heap.pop_max h);
  check Alcotest.int "last" 1 (Ec_util.Idx_heap.pop_max h);
  Alcotest.check_raises "empty" Not_found (fun () -> ignore (Ec_util.Idx_heap.pop_max h))

let test_heap_bump_while_in () =
  let h = Ec_util.Idx_heap.create 4 in
  List.iter (Ec_util.Idx_heap.insert h) [ 0; 1; 2; 3 ];
  Ec_util.Idx_heap.set_priority h 2 10.0;
  check Alcotest.int "bumped to top" 2 (Ec_util.Idx_heap.pop_max h);
  Ec_util.Idx_heap.set_priority h 0 5.0;
  check Alcotest.int "second bump" 0 (Ec_util.Idx_heap.pop_max h)

let test_heap_reinsert () =
  let h = Ec_util.Idx_heap.create 3 in
  Ec_util.Idx_heap.insert h 0;
  Ec_util.Idx_heap.insert h 0;
  check Alcotest.int "no duplicate" 1 (Ec_util.Idx_heap.size h);
  ignore (Ec_util.Idx_heap.pop_max h);
  check Alcotest.bool "mem after pop" false (Ec_util.Idx_heap.mem h 0);
  Ec_util.Idx_heap.insert h 0;
  check Alcotest.bool "reinsert" true (Ec_util.Idx_heap.mem h 0)

let heap_sorts =
  QCheck.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0.0 100.0))
    (fun prios ->
      let n = List.length prios in
      let h = Ec_util.Idx_heap.create n in
      List.iteri
        (fun i p ->
          Ec_util.Idx_heap.set_priority h i p;
          Ec_util.Idx_heap.insert h i)
        prios;
      let popped = List.init n (fun _ -> Ec_util.Idx_heap.pop_max h) in
      let prio_arr = Array.of_list prios in
      let values = List.map (fun i -> prio_arr.(i)) popped in
      List.sort compare values = List.rev (List.sort compare values) |> ignore;
      (* non-increasing *)
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | [ _ ] | [] -> true
      in
      non_increasing values)

let heap_rescale_preserves_order =
  QCheck.Test.make ~name:"heap rescale preserves order" ~count:100
    QCheck.(list_of_size Gen.(int_range 2 20) (float_range 1.0 100.0))
    (fun prios ->
      let n = List.length prios in
      let h1 = Ec_util.Idx_heap.create n and h2 = Ec_util.Idx_heap.create n in
      List.iteri
        (fun i p ->
          Ec_util.Idx_heap.set_priority h1 i p;
          Ec_util.Idx_heap.insert h1 i;
          Ec_util.Idx_heap.set_priority h2 i p;
          Ec_util.Idx_heap.insert h2 i)
        prios;
      Ec_util.Idx_heap.rescale h2 0.5;
      List.init n (fun _ -> Ec_util.Idx_heap.pop_max h1)
      = List.init n (fun _ -> Ec_util.Idx_heap.pop_max h2))

let qtest = QCheck_alcotest.to_alcotest

let tests =
  [ ( "util.vec",
      [ Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
        Alcotest.test_case "get/set" `Quick test_vec_get_set;
        Alcotest.test_case "growth" `Quick test_vec_growth;
        Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
        Alcotest.test_case "shrink/clear" `Quick test_vec_shrink_clear;
        Alcotest.test_case "iterators" `Quick test_vec_iterators;
        qtest vec_roundtrip ] );
    ( "util.rng",
      [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "sample" `Quick test_rng_sample;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        Alcotest.test_case "split" `Quick test_rng_split_independent;
        qtest rng_int_uniformish ] );
    ( "util.stats",
      [ Alcotest.test_case "mean/median" `Quick test_stats_mean_median;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "min_max/geometric" `Quick test_stats_min_max_geo;
        qtest stats_median_bounds ] );
    ( "util.tablefmt",
      [ Alcotest.test_case "basic render" `Quick test_tablefmt_basic;
        Alcotest.test_case "arity check" `Quick test_tablefmt_arity;
        Alcotest.test_case "cells" `Quick test_tablefmt_cells ] );
    ( "util.idx_heap",
      [ Alcotest.test_case "basic" `Quick test_heap_basic;
        Alcotest.test_case "bump while in" `Quick test_heap_bump_while_in;
        Alcotest.test_case "reinsert" `Quick test_heap_reinsert;
        qtest heap_sorts;
        qtest heap_rescale_preserves_order ] ) ]
