(* Tests for Ec_sat.Preprocess: equisatisfiability, reconstruction,
   and the individual simplifications. *)

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

module F = Ec_cnf.Formula
module C = Ec_cnf.Clause
module A = Ec_cnf.Assignment
module O = Ec_sat.Outcome
module P = Ec_sat.Preprocess

let test_units_and_contradiction () =
  let f = F.of_lists ~num_vars:3 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] in
  (match P.simplify f with
  | `Simplified r ->
    check Alcotest.int "everything propagated away" 0 (F.num_clauses r.P.formula);
    check Alcotest.int "three vars fixed" 3 (List.length r.P.fixed);
    let lifted = P.reconstruct r (A.make 3) in
    check Alcotest.bool "lifted model satisfies" true (A.satisfies lifted f)
  | `Unsat -> Alcotest.fail "satisfiable");
  match P.simplify (F.of_lists ~num_vars:1 [ [ 1 ]; [ -1 ] ]) with
  | `Unsat -> ()
  | `Simplified _ -> Alcotest.fail "contradicting units"

let test_pure_literals () =
  let f = F.of_lists ~num_vars:3 [ [ 1; 2 ]; [ 1; 3 ] ] in
  match P.simplify f with
  | `Simplified r ->
    (* v1 is pure positive: both clauses die *)
    check Alcotest.int "clauses gone" 0 (F.num_clauses r.P.formula);
    check Alcotest.bool "v1 fixed true" true (List.mem (1, true) r.P.fixed)
  | `Unsat -> Alcotest.fail "satisfiable"

let test_subsumption () =
  let f = F.of_lists ~num_vars:4 [ [ 1; 2 ]; [ 1; 2; 3 ]; [ 1; 2; 4 ]; [ -1; -2 ] ] in
  match P.simplify f with
  | `Simplified r ->
    (* (1 2) subsumes the two wider clauses; preprocessing may then
       simplify further, but the subsumed ones must be gone *)
    check Alcotest.bool "subsumed removed" true (r.P.clauses_removed >= 2)
  | `Unsat -> Alcotest.fail "satisfiable"

let test_self_subsumption () =
  (* (1 2) and (-1 2 3) with both phases of every variable present so
     pure-literal fixing cannot preempt the strengthening *)
  let f =
    F.of_lists ~num_vars:3 [ [ 1; 2 ]; [ -1; 2; 3 ]; [ -3; -2 ]; [ 1; -2 ] ]
  in
  match P.simplify f with
  | `Simplified r -> check Alcotest.bool "literal removed" true (r.P.literals_removed >= 1)
  | `Unsat -> Alcotest.fail "satisfiable"

let test_elimination_reconstructs () =
  (* v2 occurs once positively and once negatively: eliminated *)
  let f = F.of_lists ~num_vars:3 [ [ 1; 2 ]; [ -2; 3 ] ] in
  match P.simplify f with
  | `Simplified r ->
    check Alcotest.bool "something disappeared" true
      (r.P.eliminated <> [] || r.P.fixed <> []);
    (match Ec_sat.Cdcl.solve_formula r.P.formula with
    | O.Sat a ->
      let lifted = P.reconstruct r a in
      check Alcotest.bool "lifted satisfies original" true (A.satisfies lifted f)
    | O.Unsat | O.Unknown _ -> Alcotest.fail "simplified formula satisfiable")
  | `Unsat -> Alcotest.fail "satisfiable"

let formula_gen =
  QCheck.Gen.(
    let* n = int_range 3 12 in
    let* m = int_range 1 40 in
    let clause =
      let* w = int_range 1 (min 4 n) in
      let* vars = QCheck.Gen.shuffle_l (List.init n (fun i -> i + 1)) in
      let vars = List.filteri (fun i _ -> i < w) vars in
      let* signs = list_repeat w bool in
      return (List.map2 (fun v s -> if s then v else -v) vars signs)
    in
    let* clauses = list_repeat m clause in
    return (F.of_lists ~num_vars:n clauses))

let arb_formula = QCheck.make ~print:F.to_string formula_gen

let prop_equisatisfiable =
  QCheck.Test.make ~name:"preprocess preserves satisfiability" ~count:400 arb_formula
    (fun f ->
      let scratch = O.is_sat (Ec_sat.Cdcl.solve_formula f) in
      match P.simplify f with
      | `Unsat -> not scratch
      | `Simplified r -> (
        match Ec_sat.Cdcl.solve_formula r.P.formula with
        | O.Sat a -> scratch && A.satisfies (P.reconstruct r a) f
        | O.Unsat -> not scratch
        | O.Unknown _ -> false))

let prop_pipeline_equals_scratch =
  QCheck.Test.make ~name:"solve_with_preprocessing = plain cdcl" ~count:300 arb_formula
    (fun f ->
      let a = P.solve_with_preprocessing f in
      let b = Ec_sat.Cdcl.solve_formula f in
      match (a, b) with
      | O.Sat m, O.Sat _ -> A.satisfies m f
      | O.Unsat, O.Unsat -> true
      | _, _ -> false)

let prop_only_shrinks =
  QCheck.Test.make ~name:"preprocess never grows the formula" ~count:200 arb_formula
    (fun f ->
      match P.simplify f with
      | `Unsat -> true
      | `Simplified r ->
        F.num_clauses r.P.formula <= F.num_clauses f
        && F.num_vars r.P.formula = F.num_vars f)

let tests =
  [ ( "sat.preprocess",
      [ Alcotest.test_case "units" `Quick test_units_and_contradiction;
        Alcotest.test_case "pure literals" `Quick test_pure_literals;
        Alcotest.test_case "subsumption" `Quick test_subsumption;
        Alcotest.test_case "self-subsumption" `Quick test_self_subsumption;
        Alcotest.test_case "elimination + reconstruction" `Quick
          test_elimination_reconstructs;
        qtest prop_equisatisfiable;
        qtest prop_pipeline_equals_scratch;
        qtest prop_only_shrinks ] ) ]
