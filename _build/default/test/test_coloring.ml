(* Tests for Ec_coloring: the graph substrate and the three EC
   techniques on the coloring application. *)

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

module G = Ec_coloring.Graph
module E = Ec_coloring.Encode_coloring
module Ops = Ec_coloring.Ec_ops

(* ---- Graph ---- *)

let test_graph_basics () =
  let g = G.create ~num_nodes:4 [ (1, 2); (2, 3); (2, 1) ] in
  check Alcotest.int "nodes" 4 (G.num_nodes g);
  check Alcotest.int "edges deduped" 2 (G.num_edges g);
  check (Alcotest.list Alcotest.int) "neighbors" [ 1; 3 ] (G.neighbors g 2);
  check Alcotest.bool "adjacent" true (G.adjacent g 1 2);
  check Alcotest.bool "not adjacent" false (G.adjacent g 1 4);
  check Alcotest.int "degree" 2 (G.degree g 2);
  check Alcotest.int "max degree" 2 (G.max_degree g);
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop")
    (fun () -> ignore (G.create ~num_nodes:2 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.create: endpoint out of range") (fun () ->
      ignore (G.create ~num_nodes:2 [ (1, 3) ]))

let test_graph_updates () =
  let g = G.create ~num_nodes:3 [ (1, 2) ] in
  let g2 = G.add_edge g 2 3 in
  check Alcotest.int "edge added" 2 (G.num_edges g2);
  check Alcotest.int "original untouched" 1 (G.num_edges g);
  check Alcotest.bool "idempotent add" true (G.add_edge g 1 2 == g);
  let g3 = G.remove_edge g2 1 2 in
  check Alcotest.bool "removed" false (G.adjacent g3 1 2);
  let g4 = G.add_node g in
  check Alcotest.int "node added" 4 (G.num_nodes g4);
  let g5 = G.remove_node g2 2 in
  check Alcotest.int "node isolation removes its edges" 0 (G.num_edges g5);
  check Alcotest.int "node ids stable" 3 (G.num_nodes g5)

let test_graph_planted_and_greedy () =
  let rng = Ec_util.Rng.create 8 in
  let g, planted = G.random_planted rng ~num_nodes:25 ~colors:5 ~edges:60 in
  check Alcotest.int "edges placed" 60 (G.num_edges g);
  check Alcotest.bool "planted proper" true (G.proper g planted);
  let greedy = G.greedy_coloring g in
  check Alcotest.bool "greedy proper" true (G.proper g greedy);
  check Alcotest.bool "greedy bounded by maxdeg+1" true
    (Array.fold_left max 0 greedy <= G.max_degree g + 1)

let prop_proper_detects_conflicts =
  QCheck.Test.make ~name:"proper rejects monochrome edges" ~count:100
    QCheck.(int_range 2 12)
    (fun n ->
      let g = G.create ~num_nodes:n [ (1, 2) ] in
      let mono = Array.make (n + 1) 1 in
      let fixed = Array.copy mono in
      fixed.(2) <- 2;
      (not (G.proper g mono)) && G.proper g fixed)

(* ---- Encoding ---- *)

let test_encoding_solves_triangle () =
  let g = G.create ~num_nodes:3 [ (1, 2); (2, 3); (1, 3) ] in
  (* triangle is 3-chromatic: infeasible with 2 colors, feasible with 3 *)
  let e2 = E.make g ~colors:2 in
  let s2, _ = Ec_ilpsolver.Bnb.solve_decision (E.model e2) in
  check Alcotest.bool "2 colors infeasible" false (Ec_ilp.Solution.has_point s2);
  let e3 = E.make g ~colors:3 in
  let s3, _ = Ec_ilpsolver.Bnb.solve_decision (E.model e3) in
  (match E.decode e3 s3 with
  | Some c -> check Alcotest.bool "3-coloring proper" true (G.proper g c)
  | None -> Alcotest.fail "triangle is 3-colorable")

let test_encoding_roundtrip () =
  let g = G.create ~num_nodes:3 [ (1, 2) ] in
  let e = E.make g ~colors:2 in
  let coloring = [| 0; 1; 2; 1 |] in
  let decoded = E.coloring_of_point e (E.point_of_coloring e coloring) in
  check (Alcotest.array Alcotest.int) "roundtrip" coloring decoded

let prop_encoding_matches_greedy_feasibility =
  QCheck.Test.make ~name:"ILP feasible whenever greedy colors with <= k" ~count:60
    QCheck.(pair (int_range 3 10) (int_range 0 15))
    (fun (n, extra_edges) ->
      let rng = Ec_util.Rng.create (n + (100 * extra_edges)) in
      let max_edges = n * (n - 1) / 2 in
      let g =
        List.fold_left
          (fun g _ ->
            let u = 1 + Ec_util.Rng.int rng n and w = 1 + Ec_util.Rng.int rng n in
            if u = w then g else G.add_edge g u w)
          (G.create ~num_nodes:n [])
          (List.init (min extra_edges max_edges) Fun.id)
      in
      let greedy = G.greedy_coloring g in
      let k = Array.fold_left max 0 greedy in
      let e = E.make g ~colors:(max k 1) in
      let s, _ = Ec_ilpsolver.Bnb.solve_decision (E.model e) in
      match E.decode e s with
      | Some c -> G.proper g c
      | None -> false)

(* ---- Enabling ---- *)

let test_enabling_constraints () =
  let rng = Ec_util.Rng.create 9 in
  let g, _ = G.random_planted rng ~num_nodes:15 ~colors:5 ~edges:25 in
  let e = E.make g ~colors:5 in
  Ops.add_enabling e;
  let s, _ = Ec_ilpsolver.Bnb.solve_decision (E.model e) in
  match E.decode e s with
  | Some c ->
    check Alcotest.bool "proper" true (G.proper g c);
    check Alcotest.bool "every node has a spare color" true (Ops.enabled g ~colors:5 c)
  | None -> Alcotest.fail "sparse instance should be enableable"

let test_enabling_infeasible_when_tight () =
  (* complete graph on k nodes with exactly k colors: no spare exists *)
  let k = 4 in
  let g =
    G.create ~num_nodes:k
      (List.concat_map
         (fun u -> List.filter_map (fun w -> if u < w then Some (u, w) else None)
                     (List.init k (fun i -> i + 1)))
         (List.init k (fun i -> i + 1)))
  in
  let e = E.make g ~colors:k in
  Ops.add_enabling e;
  let s, _ = Ec_ilpsolver.Bnb.solve_decision (E.model e) in
  check Alcotest.bool "K4 with 4 colors has no enabled coloring" false
    (Ec_ilp.Solution.has_point s)

let test_spare_colors () =
  let g = G.create ~num_nodes:3 [ (1, 2) ] in
  let coloring = [| 0; 1; 2; 1 |] in
  check (Alcotest.list Alcotest.int) "spares of node 1" [ 3 ]
    (Ops.spare_colors g ~colors:3 coloring 1);
  check (Alcotest.list Alcotest.int) "isolated node spares" [ 2; 3 ]
    (Ops.spare_colors g ~colors:3 coloring 3)

(* ---- Fast EC ---- *)

let test_fast_noop () =
  let g = G.create ~num_nodes:3 [ (1, 2) ] in
  let coloring = [| 0; 1; 2; 1 |] in
  let r = Ops.fast_resolve g ~colors:3 coloring in
  check Alcotest.bool "already proper" true (r.Ops.conflicted = []);
  check Alcotest.bool "unchanged" true (r.Ops.coloring = Some coloring)

let test_fast_local_repair () =
  (* enabled colorings absorb an edge insertion with a local recolor *)
  let rng = Ec_util.Rng.create 10 in
  let g, _ = G.random_planted rng ~num_nodes:20 ~colors:6 ~edges:30 in
  let e = E.make g ~colors:6 in
  Ops.add_enabling e;
  let s, _ = Ec_ilpsolver.Bnb.solve_decision (E.model e) in
  match E.decode e s with
  | None -> Alcotest.fail "enableable"
  | Some c ->
    (* find a monochrome non-edge and insert it *)
    let rec find guard =
      if guard = 0 then None
      else
        let u = 1 + Ec_util.Rng.int rng 20 and w = 1 + Ec_util.Rng.int rng 20 in
        if u <> w && (not (G.adjacent g u w)) && c.(u) = c.(w) then Some (u, w)
        else find (guard - 1)
    in
    (match find 10000 with
    | None -> () (* no monochrome non-edge: nothing to test *)
    | Some (u, w) ->
      let g' = G.add_edge g u w in
      let r = Ops.fast_resolve g' ~colors:6 c in
      (match r.Ops.coloring with
      | Some c' ->
        check Alcotest.bool "repaired" true (G.proper g' c');
        check Alcotest.bool "conflict seen" true (r.Ops.conflicted <> []);
        check Alcotest.bool "local (no cone)" true (r.Ops.cone_nodes = 0)
      | None -> Alcotest.fail "repairable"))

let prop_fast_always_proper =
  QCheck.Test.make ~name:"fast_resolve output is always proper" ~count:60
    QCheck.(pair (int_range 4 12) (int_range 0 10))
    (fun (n, seed) ->
      let rng = Ec_util.Rng.create seed in
      let colors = 4 in
      match G.random_planted rng ~num_nodes:n ~colors ~edges:(n - 2) with
      | exception Invalid_argument _ ->
        QCheck.assume_fail () (* degenerate color draw: too few bichromatic pairs *)
      | g, planted ->
      (* random change: add an edge *)
      let u = 1 + Ec_util.Rng.int rng n and w = 1 + Ec_util.Rng.int rng n in
      let g' = if u = w then g else G.add_edge g u w in
      let r = Ops.fast_resolve g' ~colors planted in
      match r.Ops.coloring with
      | Some c -> G.proper g' c
      | None -> true (* infeasible is a legal outcome when K5-ish emerges *))

(* ---- Preserving EC ---- *)

let test_preserving_optimal_vs_scratch () =
  let rng = Ec_util.Rng.create 11 in
  let g, planted = G.random_planted rng ~num_nodes:15 ~colors:4 ~edges:25 in
  (* add edges that invalidate the planted coloring *)
  let rec add_conflict g guard =
    if guard = 0 then g
    else
      let u = 1 + Ec_util.Rng.int rng 15 and w = 1 + Ec_util.Rng.int rng 15 in
      if u <> w && (not (G.adjacent g u w)) && planted.(u) = planted.(w) then
        G.add_edge g u w
      else add_conflict g (guard - 1)
    in
  let g' = add_conflict g 10000 in
  let r = Ops.preserving_resolve g' ~colors:4 ~reference:planted in
  match r.Ops.coloring with
  | Some c ->
    check Alcotest.bool "proper" true (G.proper g' c);
    check Alcotest.bool "optimal flag" true r.Ops.optimal;
    check Alcotest.bool "high preservation" true (r.Ops.preserved >= r.Ops.total - 2)
  | None -> Alcotest.fail "still colorable"

let test_preserving_pins () =
  let g = G.create ~num_nodes:3 [ (1, 2); (2, 3) ] in
  let reference = [| 0; 1; 2; 1 |] in
  let r = Ops.preserving_resolve ~pins:[ 1; 3 ] g ~colors:3 ~reference in
  match r.Ops.coloring with
  | Some c ->
    check Alcotest.int "pin 1" 1 c.(1);
    check Alcotest.int "pin 3" 1 c.(3)
  | None -> Alcotest.fail "feasible with pins"

let test_changes () =
  let g = G.create ~num_nodes:2 [] in
  let g1 = Ops.apply_change g (Ops.Add_edge (1, 2)) in
  check Alcotest.int "edge" 1 (G.num_edges g1);
  let g2 = Ops.apply_change g1 Ops.Add_node in
  check Alcotest.int "node" 3 (G.num_nodes g2);
  let g3 = Ops.apply_change g2 (Ops.Remove_edge (1, 2)) in
  check Alcotest.int "removed" 0 (G.num_edges g3);
  check Alcotest.string "to_string" "add edge (1,2)" (Ops.change_to_string (Ops.Add_edge (1, 2)))

let tests =
  [ ( "coloring.graph",
      [ Alcotest.test_case "basics" `Quick test_graph_basics;
        Alcotest.test_case "updates" `Quick test_graph_updates;
        Alcotest.test_case "planted + greedy" `Quick test_graph_planted_and_greedy;
        qtest prop_proper_detects_conflicts ] );
    ( "coloring.encoding",
      [ Alcotest.test_case "triangle chromatic number" `Quick test_encoding_solves_triangle;
        Alcotest.test_case "point roundtrip" `Quick test_encoding_roundtrip;
        qtest prop_encoding_matches_greedy_feasibility ] );
    ( "coloring.enabling",
      [ Alcotest.test_case "spare-color constraints" `Quick test_enabling_constraints;
        Alcotest.test_case "tight instance infeasible" `Quick
          test_enabling_infeasible_when_tight;
        Alcotest.test_case "spare_colors" `Quick test_spare_colors ] );
    ( "coloring.fast",
      [ Alcotest.test_case "no-op" `Quick test_fast_noop;
        Alcotest.test_case "local repair on enabled coloring" `Quick
          test_fast_local_repair;
        qtest prop_fast_always_proper ] );
    ( "coloring.preserving",
      [ Alcotest.test_case "optimal preservation" `Quick test_preserving_optimal_vs_scratch;
        Alcotest.test_case "pins" `Quick test_preserving_pins;
        Alcotest.test_case "changes" `Quick test_changes ] ) ]
