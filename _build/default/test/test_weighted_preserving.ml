(* Weighted preserving EC: heavy variables win over more numerous
   light ones. *)

let check = Alcotest.check

module F = Ec_cnf.Formula
module C = Ec_cnf.Clause
module A = Ec_cnf.Assignment
module P = Ec_core.Preserving

let test_weight_tradeoff () =
  (* v1 XOR-ish tension: (v1 + v2)(~v1 + ~v2) — exactly one of v1,v2.
     Reference has both true (invalid after the change); preserving
     must flip one.  Unweighted: either flip is optimal.  With weight
     10 on v1, the optimum must keep v1. *)
  let f = F.of_lists ~num_vars:2 [ [ 1; 2 ]; [ -1; -2 ] ] in
  let reference = A.of_list 2 [ (1, true); (2, true) ] in
  let r = P.resolve ~weights:[ (1, 10.0) ] f ~reference in
  (match r.P.solution with
  | Some a ->
    check Alcotest.bool "heavy v1 kept" true (A.value a 1 = A.True);
    check Alcotest.bool "light v2 flipped" true (A.value a 2 <> A.True)
  | None -> Alcotest.fail "satisfiable");
  (* symmetric check: weight on v2 instead *)
  let r2 = P.resolve ~weights:[ (2, 10.0) ] f ~reference in
  match r2.P.solution with
  | Some a -> check Alcotest.bool "heavy v2 kept" true (A.value a 2 = A.True)
  | None -> Alcotest.fail "satisfiable"

let test_weight_beats_count () =
  (* one heavy variable vs three light ones on opposite sides of an
     exclusive choice *)
  let f =
    F.of_lists ~num_vars:4
      [ [ 1; 2 ]; [ -1; -2 ]; [ 1; 3 ]; [ -1; -3 ]; [ 1; 4 ]; [ -1; -4 ] ]
  in
  (* v1 true forces v2,v3,v4 false and vice versa *)
  let reference = A.of_list 4 [ (1, true); (2, true); (3, true); (4, true) ] in
  let unweighted = P.resolve f ~reference in
  (match unweighted.P.solution with
  | Some a ->
    check Alcotest.bool "unweighted keeps the three" true (A.value a 1 = A.False)
  | None -> Alcotest.fail "satisfiable");
  let weighted = P.resolve ~weights:[ (1, 5.0) ] f ~reference in
  match weighted.P.solution with
  | Some a -> check Alcotest.bool "weight 5 flips the choice" true (A.value a 1 = A.True)
  | None -> Alcotest.fail "satisfiable"

let test_weight_guards () =
  let f = F.of_lists ~num_vars:1 [ [ 1 ] ] in
  let reference = A.of_list 1 [ (1, true) ] in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Preserving.resolve: negative weight") (fun () ->
      ignore (P.resolve ~weights:[ (1, -1.0) ] f ~reference));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Preserving.resolve: weighted variable out of range") (fun () ->
      ignore (P.resolve ~weights:[ (7, 1.0) ] f ~reference));
  Alcotest.check_raises "cardinality engine rejects weights"
    (Invalid_argument "Preserving.resolve: weights require the Ilp_objective engine")
    (fun () ->
      ignore
        (P.resolve
           ~engine:(P.Sat_cardinality Ec_sat.Cdcl.default_options)
           ~weights:[ (1, 2.0) ] f ~reference))

let tests =
  [ ( "core.preserving.weighted",
      [ Alcotest.test_case "weight trade-off" `Quick test_weight_tradeoff;
        Alcotest.test_case "weight beats count" `Quick test_weight_beats_count;
        Alcotest.test_case "guards" `Quick test_weight_guards ] ) ]
