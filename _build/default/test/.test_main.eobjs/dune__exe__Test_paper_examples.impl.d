test/test_paper_examples.ml: Alcotest Array Ec_cnf Ec_core Ec_ilp Ec_ilpsolver Ec_sat List Printf
