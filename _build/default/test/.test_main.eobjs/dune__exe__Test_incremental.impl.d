test/test_incremental.ml: Alcotest Ec_cnf Ec_sat List QCheck QCheck_alcotest
