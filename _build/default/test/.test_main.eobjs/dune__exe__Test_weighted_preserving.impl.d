test/test_weighted_preserving.ml: Alcotest Ec_cnf Ec_core Ec_sat
