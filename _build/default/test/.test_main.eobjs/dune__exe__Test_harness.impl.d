test/test_harness.ml: Alcotest Ec_cnf Ec_core Ec_harness Ec_instances Ec_util List String
