test/test_ilpsolver.ml: Alcotest Array Ec_ilp Ec_ilpsolver List QCheck QCheck_alcotest
