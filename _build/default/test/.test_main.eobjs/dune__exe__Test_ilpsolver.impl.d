test/test_ilpsolver.ml: Alcotest Array Ec_ilp Ec_ilpsolver Ec_util List QCheck QCheck_alcotest
