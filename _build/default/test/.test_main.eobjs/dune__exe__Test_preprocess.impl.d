test/test_preprocess.ml: Alcotest Ec_cnf Ec_sat List QCheck QCheck_alcotest
