test/test_totalizer.ml: Alcotest Ec_cnf Ec_sat Fun List Printf QCheck QCheck_alcotest
