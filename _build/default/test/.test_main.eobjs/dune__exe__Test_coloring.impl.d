test/test_coloring.ml: Alcotest Array Ec_coloring Ec_ilp Ec_ilpsolver Ec_util Fun List QCheck QCheck_alcotest
