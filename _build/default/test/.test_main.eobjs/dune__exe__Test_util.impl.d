test/test_util.ml: Alcotest Array Ec_util Gen Hashtbl List QCheck QCheck_alcotest String
