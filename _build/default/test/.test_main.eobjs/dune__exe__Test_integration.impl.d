test/test_integration.ml: Alcotest Ec_cnf Ec_core Ec_instances Ec_sat Ec_util Filename List Printf QCheck QCheck_alcotest Sys
