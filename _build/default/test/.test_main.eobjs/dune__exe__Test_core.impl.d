test/test_core.ml: Alcotest Array Ec_cnf Ec_core Ec_ilp Ec_ilpsolver Ec_sat Ec_util Fun List QCheck QCheck_alcotest
