test/test_cnf.ml: Alcotest Ec_cnf Ec_sat Ec_util Format List QCheck QCheck_alcotest
