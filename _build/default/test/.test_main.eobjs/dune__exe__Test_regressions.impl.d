test/test_regressions.ml: Alcotest Ec_cnf Ec_sat
