test/test_budget.ml: Alcotest Ec_cnf Ec_core Ec_ilp Ec_ilpsolver Ec_sat Ec_simplex Ec_util Fmt Fun List
