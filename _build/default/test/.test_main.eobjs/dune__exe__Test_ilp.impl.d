test/test_ilp.ml: Alcotest Array Ec_ilp List QCheck QCheck_alcotest String
