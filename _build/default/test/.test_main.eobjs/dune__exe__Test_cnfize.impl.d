test/test_cnfize.ml: Alcotest Array Ec_core Ec_ilp Ec_ilpsolver Ec_instances Ec_sat Fun List Option QCheck QCheck_alcotest
