test/test_sat.ml: Alcotest Ec_cnf Ec_sat Ec_util Fun List Printf QCheck QCheck_alcotest String
