test/test_instances.ml: Alcotest Ec_cnf Ec_core Ec_instances Ec_util List
