test/test_simplex.ml: Alcotest Array Ec_ilp Ec_simplex Float List QCheck QCheck_alcotest
