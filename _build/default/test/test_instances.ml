(* Tests for Ec_instances: every generator produces exactly-sized,
   satisfiable, enabling-feasible instances; registry lookup and
   scaling. *)

let check = Alcotest.check

module F = Ec_cnf.Formula
module A = Ec_cnf.Assignment
module R = Ec_instances.Registry

(* All family invariants on one built instance. *)
let check_instance (inst : R.instance) =
  let f = inst.formula and planted = inst.planted in
  check Alcotest.int (inst.spec.name ^ " vars") inst.spec.num_vars (F.num_vars f);
  check Alcotest.int (inst.spec.name ^ " clauses") inst.spec.num_clauses (F.num_clauses f);
  check Alcotest.bool (inst.spec.name ^ " planted satisfies") true (A.satisfies planted f);
  (* the planted witness makes enabling EC feasible *)
  check Alcotest.bool (inst.spec.name ^ " planted is enabled") true
    (Ec_core.Enabling.verify f planted)

let test_small_suite_builds () =
  List.iter (fun spec -> check_instance (R.build spec)) R.small_suite

let test_large_suite_scaled_builds () =
  List.iter (fun spec -> check_instance (R.build (R.scale 0.1 spec))) R.large_suite

let test_registry_find () =
  let s = R.find "jnh1" in
  check Alcotest.int "jnh1 vars" 100 s.R.num_vars;
  check Alcotest.int "jnh1 clauses" 850 s.R.num_clauses;
  check Alcotest.bool "exact tier" true (s.R.tier = R.Exact);
  check Alcotest.bool "g250.29 heuristic tier" true
    ((R.find "g250.29").R.tier = R.Heuristic);
  (match R.find "nonexistent" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown instance must raise");
  check Alcotest.int "13 instances" 13 (List.length R.paper_suite);
  check Alcotest.int "8 exact" 8 (List.length R.small_suite);
  check Alcotest.int "5 heuristic" 5 (List.length R.large_suite)

let test_paper_sizes_match_tables () =
  (* spot-check the table sizes the paper prints *)
  List.iter
    (fun (name, nv, nc) ->
      let s = R.find name in
      check Alcotest.int (name ^ " nv") nv s.R.num_vars;
      check Alcotest.int (name ^ " nc") nc s.R.num_clauses)
    [ ("par8-1-c", 64, 254); ("ii8a1", 66, 186); ("par8-3-c", 75, 298);
      ("jnh201", 100, 800); ("jnh1", 100, 850); ("ii8a2", 180, 800);
      ("ii8b2", 576, 4088); ("f600", 600, 2550); ("par32-5-c", 1339, 5350);
      ("ii16a1", 1650, 19368); ("par32-5", 3176, 10325); ("g250.15", 3750, 233965);
      ("g250.29", 7250, 454622) ]

let test_scale_identity_and_shrink () =
  let s = R.find "f600" in
  check Alcotest.bool "scale 1.0 identity" true (R.scale 1.0 s = s);
  let small = R.scale 0.1 s in
  check Alcotest.bool "shrunk" true (small.R.num_vars < s.R.num_vars);
  (* ratio approximately preserved *)
  let ratio spec = float_of_int spec.R.num_clauses /. float_of_int spec.R.num_vars in
  check Alcotest.bool "ratio close" true (abs_float (ratio small -. ratio s) < 0.5)

let test_scale_coloring_consistent () =
  let s = R.scale 0.1 (R.find "g250.15") in
  (match s.R.family with
  | R.Coloring { nodes; colors } ->
    check Alcotest.int "vars = nodes*colors" (nodes * colors) s.R.num_vars;
    check Alcotest.int "clauses = nodes + edges*colors" 0
      ((s.R.num_clauses - nodes) mod colors)
  | _ -> Alcotest.fail "family preserved");
  check_instance (R.build s)

let test_determinism () =
  let spec = R.scale 0.2 (R.find "jnh201") in
  let a = R.build spec and b = R.build spec in
  check Alcotest.bool "same seed, same formula" true (F.equal a.R.formula b.R.formula);
  let spec2 = { spec with R.seed = spec.R.seed + 1 } in
  let c = R.build spec2 in
  check Alcotest.bool "different seed differs" false (F.equal a.R.formula c.R.formula)

let test_parity_structure () =
  let f, planted = Ec_instances.Parity.generate ~seed:3 ~num_vars:30 ~num_clauses:120 in
  check Alcotest.int "sizes" 120 (F.num_clauses f);
  check Alcotest.bool "planted 2-satisfies all clauses" true
    (let ok = ref true in
     F.iteri (fun _ c -> if A.clause_sat_count planted c < 2 then ok := false) f;
     !ok)

let test_coloring_structure () =
  let f, planted = Ec_instances.Coloring.generate ~seed:4 ~nodes:12 ~colors:6 ~num_clauses:(12 + (15 * 6)) in
  check Alcotest.int "vars" 72 (F.num_vars f);
  check Alcotest.bool "planted proper pair coloring" true (A.satisfies planted f);
  Alcotest.check_raises "non-integer edges"
    (Invalid_argument "Coloring.generate: num_clauses must be nodes + edges*colors")
    (fun () -> ignore (Ec_instances.Coloring.generate ~seed:4 ~nodes:12 ~colors:6 ~num_clauses:99))

let test_random_ksat_width () =
  let f, _ = Ec_instances.Random_ksat.generate ~k:3 ~seed:5 ~num_vars:40 ~num_clauses:160 () in
  F.iteri
    (fun _ c -> check Alcotest.int "3-SAT width" 3 (Ec_cnf.Clause.size c))
    f

let test_generator_guards () =
  Alcotest.check_raises "parity too few vars"
    (Invalid_argument "Parity.generate: need >= 5 variables") (fun () ->
      ignore (Ec_instances.Parity.generate ~seed:1 ~num_vars:3 ~num_clauses:20));
  Alcotest.check_raises "ksat nv < k"
    (Invalid_argument "Random_ksat.generate: num_vars < k") (fun () ->
      ignore (Ec_instances.Random_ksat.generate ~k:3 ~seed:1 ~num_vars:2 ~num_clauses:4 ()));
  Alcotest.check_raises "padding overflow"
    (Invalid_argument "Padding.pad_to: core has 2 clauses, target 1") (fun () ->
      let rng = Ec_util.Rng.create 1 in
      let planted = Ec_instances.Padding.random_planted rng 4 in
      ignore
        (Ec_instances.Padding.pad_to rng ~planted ~num_vars:4 ~target:1
           [ Ec_cnf.Clause.make [ 1 ]; Ec_cnf.Clause.make [ 2 ] ]))

let test_padding_agreement () =
  let rng = Ec_util.Rng.create 6 in
  let planted = Ec_instances.Padding.random_planted rng 12 in
  for _ = 1 to 50 do
    let c = Ec_instances.Padding.anchored_clause rng ~planted ~num_vars:12 ~width:3 in
    check Alcotest.bool "2-anchored" true (A.clause_sat_count planted c >= 2)
  done;
  for _ = 1 to 20 do
    let c = Ec_instances.Padding.anchored_clause ~agree:1 rng ~planted ~num_vars:12 ~width:2 in
    check Alcotest.bool "1-anchored" true (A.clause_sat_count planted c >= 1)
  done

let tests =
  [ ( "instances.registry",
      [ Alcotest.test_case "small suite builds + invariants" `Slow test_small_suite_builds;
        Alcotest.test_case "large suite (scaled) builds" `Slow test_large_suite_scaled_builds;
        Alcotest.test_case "find" `Quick test_registry_find;
        Alcotest.test_case "paper table sizes" `Quick test_paper_sizes_match_tables;
        Alcotest.test_case "scaling" `Quick test_scale_identity_and_shrink;
        Alcotest.test_case "coloring scaling" `Quick test_scale_coloring_consistent;
        Alcotest.test_case "determinism" `Quick test_determinism ] );
    ( "instances.generators",
      [ Alcotest.test_case "parity structure" `Quick test_parity_structure;
        Alcotest.test_case "coloring structure" `Quick test_coloring_structure;
        Alcotest.test_case "3-sat width" `Quick test_random_ksat_width;
        Alcotest.test_case "guards" `Quick test_generator_guards;
        Alcotest.test_case "padding anchoring" `Quick test_padding_agreement ] ) ]
