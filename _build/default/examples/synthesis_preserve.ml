(* Multi-stage synthesis with preservation (§7's motivation).

   "Often, a single synthesis step is followed by a number of
   consecutive synthesis steps.  Therefore, if we want to avoid
   numerous changes to all steps, we have to preserve as much as
   possible of the initial solution at the higher levels of
   abstraction."

   We model a two-stage tool chain: stage 1 assigns values to the SAT
   variables (the "high-level" decisions); stage 2 performs per-
   variable downstream work whose cost is proportional to the number
   of stage-1 decisions that changed.  A late specification change
   arrives; we compare the downstream rework bill under three policies:

   - plain re-solve (no preservation goal),
   - preserving EC with the maximum-preservation objective,
   - preserving EC with user-pinned variables (a subset that must not
     change, e.g. decisions already taped out).

   Run with: dune exec examples/synthesis_preserve.exe *)

let rework_cost ~old_assignment new_assignment =
  let n =
    min
      (Ec_cnf.Assignment.num_vars old_assignment)
      (Ec_cnf.Assignment.num_vars new_assignment)
  in
  n - Ec_cnf.Assignment.preserved_count ~old_assignment new_assignment

let () =
  let spec = Ec_instances.Registry.scale 0.35 (Ec_instances.Registry.find "par8-1-c") in
  let inst = Ec_instances.Registry.build spec in
  let f = inst.formula in
  Printf.printf "Stage-1 design: %s (%d vars, %d clauses)\n" spec.name
    (Ec_cnf.Formula.num_vars f) (Ec_cnf.Formula.num_clauses f);
  let stage1 =
    match Ec_core.Backend.solve Ec_core.Backend.ilp_exact f with
    | Ec_sat.Outcome.Sat a -> a
    | Ec_sat.Outcome.Unsat | Ec_sat.Outcome.Unknown _ -> failwith "unsat base"
  in
  Printf.printf "Stage 1 committed %d decisions; stage 2 consumed them.\n\n"
    (List.length (Ec_cnf.Assignment.assigned_vars stage1));

  (* The late change: five new clauses the old solution violates. *)
  let rng = Ec_util.Rng.create 31337 in
  let rec tightening_clauses acc k guard =
    if k = 0 || guard = 0 then acc
    else
      let c =
        Ec_cnf.Change.random_clause rng ~num_vars:(Ec_cnf.Formula.num_vars f) ~width:3
      in
      if Ec_cnf.Assignment.satisfies_clause stage1 c then
        tightening_clauses acc k (guard - 1)
      else tightening_clauses (c :: acc) (k - 1) (guard - 1)
  in
  let new_clauses = tightening_clauses [] 3 100000 in
  let f' = Ec_cnf.Formula.add_clauses f new_clauses in
  Printf.printf "Late specification change: %d new clauses; old solution still valid: %b\n\n"
    (List.length new_clauses)
    (Ec_cnf.Assignment.satisfies stage1 f');

  let report label solution optimal =
    match solution with
    | None -> Printf.printf "%-28s no solution\n" label
    | Some a ->
      assert (Ec_cnf.Assignment.satisfies a f');
      Printf.printf "%-28s rework on %3d of %d stage-1 decisions%s\n" label
        (rework_cost ~old_assignment:stage1 a)
        (Ec_cnf.Assignment.num_vars stage1)
        (if optimal then " (provably minimal)" else "")
  in

  (* Policy 1: plain re-solve. *)
  (match Ec_core.Backend.solve Ec_core.Backend.ilp_exact f' with
  | Ec_sat.Outcome.Sat a -> report "plain re-solve:" (Some a) false
  | Ec_sat.Outcome.Unsat | Ec_sat.Outcome.Unknown _ -> report "plain re-solve:" None false);

  (* Policy 2: preserving EC, both engines agree on the optimum. *)
  let r_ilp = Ec_core.Preserving.resolve f' ~reference:stage1 in
  report "preserving EC (ILP):" r_ilp.solution r_ilp.optimal;
  let r_sat =
    Ec_core.Preserving.resolve
      ~engine:(Ec_core.Preserving.Sat_cardinality Ec_sat.Cdcl.default_options) f'
      ~reference:stage1
  in
  report "preserving EC (CDCL+card):" r_sat.solution r_sat.optimal;
  assert (r_ilp.preserved = r_sat.preserved);

  (* Policy 3: pin the first quarter of the variables (already taped
     out), preserve the rest as well as possible. *)
  let pins =
    List.filteri (fun i _ -> i < Ec_cnf.Assignment.num_vars stage1 / 4)
      (Ec_cnf.Assignment.assigned_vars stage1)
  in
  let r_pin = Ec_core.Preserving.resolve ~pins f' ~reference:stage1 in
  (match r_pin.solution with
  | Some a ->
    List.iter
      (fun v ->
        assert (Ec_cnf.Assignment.value a v = Ec_cnf.Assignment.value stage1 v))
      pins;
    Printf.printf "%-28s rework on %3d decisions, %d pinned variables untouched\n"
      "preserving EC (pinned):"
      (rework_cost ~old_assignment:stage1 a)
      (List.length pins)
  | None ->
    Printf.printf "%-28s pins make the change infeasible — redesign needed\n"
      "preserving EC (pinned):")
