(* Figure 1, executed: the generic ILP-based EC flow.

   Walks one jnh-style instance through every path of the paper's flow
   diagram:

     original spec --(solver)--------------> non-EC solution
     original spec --(enabling EC + solver)-> EC solution
     + new features / preservation spec  --> modified instance
     modified instance --(fast EC)---------> updated solution
     modified instance --(preserving EC)---> updated solution

   and prints what each stage did.

   Run with: dune exec examples/flow_demo.exe *)

let stage fmt = Printf.printf ("\n--- " ^^ fmt ^^ " ---\n")

let () =
  let spec =
    Ec_instances.Registry.scale 0.3 (Ec_instances.Registry.find "jnh1")
  in
  let inst = Ec_instances.Registry.build spec in
  let f = inst.formula in
  Printf.printf "Original specification: %s (%d vars, %d clauses)\n"
    spec.name (Ec_cnf.Formula.num_vars f) (Ec_cnf.Formula.num_clauses f);

  stage "Path 1: plain solver -> non-EC solution";
  let non_ec =
    match Ec_core.Flow.solve_initial f with
    | Some init -> init
    | None -> failwith "instance unsatisfiable"
  in
  Printf.printf "solved in %.4fs; flexibility of the solution: %.2f\n"
    non_ec.solve_time_s non_ec.flexibility;

  stage "Path 2: enabling EC -> EC solution";
  let ec =
    match Ec_core.Flow.solve_initial ~enable:Ec_core.Enabling.Constraints
            ~solver:Ec_core.Backend.ilp_exact f with
    | Some init -> init
    | None -> failwith "no enabled solution"
  in
  Printf.printf "solved in %.4fs; flexibility: %.2f (plain solution had %.2f)\n"
    ec.solve_time_s ec.flexibility non_ec.flexibility;

  stage "New features arrive: eliminate 2 variables, add 5 clauses";
  let rng = Ec_util.Rng.create 7 in
  let script = Ec_cnf.Change.fast_ec_script rng f ~eliminate:2 ~add:5 ~clause_width:3 in
  List.iter (fun ch -> Printf.printf "  %s\n" (Ec_cnf.Change.to_string ch)) script;

  stage "Re-solve via fast EC (Figure 2), from each starting solution";
  List.iter
    (fun (label, init) ->
      match Ec_core.Flow.apply_change ~strategy:Ec_core.Flow.Fast init script with
      | Some u ->
        let vars, clauses = Option.value u.sub_instance_size ~default:(0, 0) in
        Printf.printf
          "%-16s cone %3d vars /%4d clauses, %.4fs, preserved %.0f%%\n" label vars
          clauses u.resolve_time_s (100.0 *. u.preserved_fraction)
      | None -> Printf.printf "%-16s failed\n" label)
    [ ("from non-EC:", non_ec); ("from EC-enabled:", ec) ];

  stage "Re-solve via preserving EC";
  (match
     Ec_core.Flow.apply_change
       ~strategy:(Ec_core.Flow.Preserve Ec_core.Preserving.default_engine) ec script
   with
  | Some u ->
    Printf.printf "preserving EC kept %.1f%% of the initial solution (%.4fs)\n"
      (100.0 *. u.preserved_fraction) u.resolve_time_s
  | None -> print_endline "preserving EC failed");

  stage "Baseline: full re-solve with no EC goals";
  match Ec_core.Flow.apply_change ~strategy:Ec_core.Flow.Full ec script with
  | Some u ->
    Printf.printf "full re-solve preserved %.1f%% by accident (%.4fs)\n"
      (100.0 *. u.preserved_fraction) u.resolve_time_s
  | None -> print_endline "full re-solve failed"
