(* Quickstart: the paper's §1 walk-through, end to end.

   Build a small SAT instance, solve it through the set-cover ILP
   encoding, compare an ordinary solution with an EC-enabled one under
   variable elimination, and repair a broken solution with fast EC and
   preserving EC.

   Run with: dune exec examples/quickstart.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

(* F = (v1 + ~v3 + ~v5)(v2 + ~v3 + ~v5)(v2 + v4 + v5)(~v3 + ~v4) —
   the instance of §1. *)
let f =
  Ec_cnf.Formula.of_lists ~num_vars:5
    [ [ 1; -3; -5 ]; [ 2; -3; -5 ]; [ 2; 4; 5 ]; [ -3; -4 ] ]

let () =
  section "The instance";
  Printf.printf "F = %s\n" (Ec_cnf.Formula.to_string f);

  section "Two satisfying solutions (paper's S and E)";
  let s = Ec_cnf.Assignment.of_list 5 [ (1, false); (2, true); (3, true); (4, false); (5, false) ] in
  let e = Ec_cnf.Assignment.of_list 5 [ (1, true); (2, true); (3, false); (4, true); (5, false) ] in
  Printf.printf "S = %s  satisfies: %b\n" (Ec_cnf.Assignment.to_string s)
    (Ec_cnf.Assignment.satisfies s f);
  Printf.printf "E = %s  satisfies: %b\n" (Ec_cnf.Assignment.to_string e)
    (Ec_cnf.Assignment.satisfies e f);

  section "Which solution tolerates engineering change?";
  List.iter
    (fun (name, a) ->
      let tolerated =
        List.filter (fun v -> Ec_cnf.Ksat.tolerates_elimination f a v) [ 1; 2; 3; 4; 5 ]
      in
      Printf.printf "%s survives eliminating %d of 5 variables (enabled: %b)\n" name
        (List.length tolerated) (Ec_cnf.Ksat.enabled f a))
    [ ("S", s); ("E", e) ]

let () =
  section "Solving through the ILP encoding (set cover, eq. 4-6)";
  let enc = Ec_core.Encode.of_formula f in
  Printf.printf "%s" (Ec_ilp.Model.to_string (Ec_core.Encode.model enc));
  let solution, stats = Ec_ilpsolver.Bnb.solve (Ec_core.Encode.model enc) in
  (match Ec_core.Encode.decode enc solution with
  | Some a ->
    Printf.printf "ILP optimum (%d nodes): %s — %d literals selected, %d don't-cares\n"
      stats.nodes (Ec_cnf.Assignment.to_string a)
      (List.length (Ec_cnf.Assignment.assigned_vars a))
      (Ec_cnf.Assignment.dc_count a)
  | None -> print_endline "unsatisfiable?")

let () =
  section "Enabling EC (hard constraints, k = 2)";
  match Ec_core.Flow.solve_initial ~enable:Ec_core.Enabling.Constraints f with
  | None -> print_endline "no enabled solution exists"
  | Some init ->
    Printf.printf "enabled solution: %s (flexibility %.2f, %.4fs)\n"
      (Ec_cnf.Assignment.to_string init.assignment)
      init.flexibility init.solve_time_s;

    section "Fast EC after eliminating v3 (Figure 2)";
    (match Ec_core.Flow.apply_change ~strategy:Ec_core.Flow.Fast init
             [ Ec_cnf.Change.Eliminate_var 3 ] with
    | Some u ->
      let vars, clauses = Option.value u.sub_instance_size ~default:(0, 0) in
      Printf.printf
        "re-solved a cone of %d vars / %d clauses (instead of the full instance)\n"
        vars clauses;
      Printf.printf "new solution: %s (preserved %.0f%% of the old one)\n"
        (Ec_cnf.Assignment.to_string u.new_assignment)
        (100.0 *. u.preserved_fraction)
    | None -> print_endline "fast EC failed");

    section "Preserving EC after adding two clauses (paper §7 example)";
    let f3 =
      Ec_cnf.Formula.of_lists ~num_vars:5
        [ [ 1; 2; 4 ]; [ 1; 4; -5 ]; [ -1; -3; 4 ]; [ 2; 3; 5 ]; [ -2; 4; 5 ]; [ 3; -4; 5 ] ]
    in
    let s3 =
      Ec_cnf.Assignment.of_list 5
        [ (1, true); (2, true); (3, false); (4, false); (5, true) ]
    in
    let f3' =
      Ec_cnf.Formula.add_clauses f3
        [ Ec_cnf.Clause.make [ -2; 3; 4 ]; Ec_cnf.Clause.make [ 1; -2; -5 ] ]
    in
    Printf.printf "old solution satisfies the modified instance: %b\n"
      (Ec_cnf.Assignment.satisfies s3 f3');
    let r = Ec_core.Preserving.resolve f3' ~reference:s3 in
    (match r.solution with
    | Some a ->
      Printf.printf "preserving EC keeps %d of %d assignments (optimal: %b): %s\n"
        r.preserved r.total r.optimal (Ec_cnf.Assignment.to_string a)
    | None -> print_endline "modified instance unsatisfiable")
