examples/synthesis_preserve.mli:
