examples/quickstart.mli:
