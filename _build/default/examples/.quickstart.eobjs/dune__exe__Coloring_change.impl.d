examples/coloring_change.ml: Array Ec_coloring Ec_ilpsolver Ec_util List Printf
