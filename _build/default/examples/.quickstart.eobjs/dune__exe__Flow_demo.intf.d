examples/flow_demo.mli:
