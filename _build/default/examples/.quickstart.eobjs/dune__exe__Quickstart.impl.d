examples/quickstart.ml: Ec_cnf Ec_core Ec_ilp Ec_ilpsolver List Option Printf
