examples/coloring_change.mli:
