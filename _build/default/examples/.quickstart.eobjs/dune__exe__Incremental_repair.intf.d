examples/incremental_repair.mli:
