examples/flow_demo.ml: Ec_cnf Ec_core Ec_instances Ec_util List Option Printf
