examples/incremental_repair.ml: Ec_cnf Ec_core Ec_ilpsolver Ec_instances Ec_util Printf
