examples/synthesis_preserve.ml: Ec_cnf Ec_core Ec_instances Ec_sat Ec_util List Printf
